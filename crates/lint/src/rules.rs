//! The determinism & correctness rules (D001–D006).
//!
//! Each rule is a predicate over the token stream of one file plus a
//! [`FileCtx`] describing where in the workspace that file lives. The rules
//! encode what the DOMINO reproduction's headline claim rests on: the
//! simulation is **bit-exact reproducible**, so relative scheduling can be
//! checked against a strict schedule by value (`tests/golden.rs`). Anything
//! that lets wall-clock time, hash order or ambient randomness leak into a
//! scheduling decision silently voids those pins. See DESIGN.md
//! §"Determinism rules" for the paper-level rationale of every rule.
//!
//! | rule | scope | what it rejects |
//! |------|-------|-----------------|
//! | D001 | all but `testkit`, `bench` | `std::time` / `Instant` / `SystemTime` |
//! | D002 | `scheduler` `mac` `sim` `medium` `faults` `obs` `campaign` | iterating a `HashMap`/`HashSet` |
//! | D003 | non-test code | `==`/`!=` against a float literal (or a local `let` bound to one) |
//! | D004 | everywhere | `rand::`, `thread_rng`, OS entropy |
//! | D005 | lib code of `phy` `scheduler` `mac` `sim` `faults` `obs` `campaign` | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` |
//! | D006 | library code; `runner`/`obs` binaries | `println!`/… in libraries; prints with inline format specs in the CLI binaries |
//! | D007 | fns reachable from `Engine::pop` / `Medium::begin` / `dispatch_batch` | `Vec::new`/`with_capacity`/`Box::new`/`format!`/`vec!`/`.to_vec()`/`.collect()` |
//! | D008 | all but `testkit`, `lint` | bare-literal `SimRng` stream ids; duplicate stream ids across crates |
//! | D009 | `sim` `medium` `mac` `scheduler` `faults` | float `.sum()`/`fold`/`partial_cmp`-based sorts |
//! | D010 | lib code of `phy` `scheduler` `mac` `sim` `faults` `obs` | `xs[i ± j]` indexing; unchecked `+`/`-` on `as_nanos()`-style sim-time integers |
//!
//! D001–D006 are token-level predicates (this module); D007–D010 are
//! *semantic* rules over the parse tree ([`crate::parser`]) — the
//! file-local halves live in [`check_semantic`] here, the cross-file
//! halves (call-graph reachability for D007, duplicate stream detection
//! for D008) in [`crate::callgraph`]. Every rule is a *conservative
//! approximation*: e.g. D003 only fires when one comparison operand is a
//! float token or a local bound to one, and D007 over-approximates
//! reachability by matching callees by name. False negatives are
//! possible; false positives should be rare — and when a hit is
//! intentional, an inline waiver (`// lint: allow(D00x) reason`) records
//! why, reviewably, at the site.

use crate::parser::{Expr, ParsedFile};
use crate::tokenizer::{Token, TokenKind};

/// Rule identifiers. `W000` is the meta-rule: a waiver without a reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Wall-clock time in simulation code.
    D001,
    /// Unordered hash-container iteration in scheduling crates.
    D002,
    /// Float equality comparison.
    D003,
    /// Ambient (non-`SimRng`) randomness.
    D004,
    /// Panicking calls in library code of the core crates.
    D005,
    /// Stdout/stderr output from library code.
    D006,
    /// Heap allocation in functions reachable from the dispatch roots.
    D007,
    /// RNG stream discipline: bare-literal or duplicate stream ids.
    D008,
    /// Order-sensitive float reduction/comparison in sim-scope crates.
    D009,
    /// Raw index arithmetic / unchecked sim-time arithmetic.
    D010,
    /// A waiver comment that carries no reason.
    W000,
}

impl RuleId {
    /// Parse `"D001"`-style names (as written inside waivers).
    pub fn parse(s: &str) -> Option<RuleId> {
        Some(match s {
            "D001" => RuleId::D001,
            "D002" => RuleId::D002,
            "D003" => RuleId::D003,
            "D004" => RuleId::D004,
            "D005" => RuleId::D005,
            "D006" => RuleId::D006,
            "D007" => RuleId::D007,
            "D008" => RuleId::D008,
            "D009" => RuleId::D009,
            "D010" => RuleId::D010,
            _ => return None,
        })
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
            RuleId::D007 => "D007",
            RuleId::D008 => "D008",
            RuleId::D009 => "D009",
            RuleId::D010 => "D010",
            RuleId::W000 => "W000",
        }
    }

    /// One-line description (shown in reports and `--rules`).
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D001 => "wall-clock time outside testkit/bench: sim time flows through sim::time",
            RuleId::D002 => "HashMap/HashSet iteration in scheduler/mac/sim/medium/faults: order feeds scheduling",
            RuleId::D003 => "float == / != : exact float comparison is representation-dependent",
            RuleId::D004 => "ambient randomness: all RNG goes through SimRng with explicit (seed, stream)",
            RuleId::D005 => "unwrap/expect/panic!/unreachable!/todo! in phy/scheduler/mac/sim/faults library code",
            RuleId::D006 => "println!/eprintln!/dbg! in library code (runner/obs binaries: no inline format specs — print pre-rendered strings)",
            RuleId::D007 => "allocation (Vec::new/with_capacity/Box::new/format!/vec!/.to_vec/.collect) in functions reachable from Engine::pop / Medium::begin / dispatch_batch",
            RuleId::D008 => "SimRng stream ids must be named `streams` constants, unique across the workspace",
            RuleId::D009 => "float .sum()/fold/partial_cmp-sorts in sim/medium/mac/scheduler/faults: reduction order must stay pinned",
            RuleId::D010 => "raw `xs[i ± j]` indexing or unchecked +/- on as_nanos()-style sim-time integers in the no-panic crates",
            RuleId::W000 => "waiver without a reason: `// lint: allow(Dxxx) <why>` requires the why",
        }
    }
}

/// Where a file sits in the workspace; decides rule applicability.
#[derive(Clone, Debug, Default)]
pub struct FileCtx {
    /// Short crate name (`"scheduler"` for `crates/scheduler/...`,
    /// `"domino"` for the root package), if recognizable.
    pub crate_name: String,
    /// Binary target (`src/main.rs`, anything under `src/bin/`).
    pub is_bin: bool,
    /// Test-only source: an integration-test (`tests/`) or example file.
    pub is_test_file: bool,
}

impl FileCtx {
    /// Derive a context from a workspace-relative path (`/`-separated).
    pub fn from_path(path: &str) -> FileCtx {
        let norm = path.replace('\\', "/");
        let crate_name = norm
            .split_once("crates/")
            .and_then(|(_, rest)| rest.split('/').next())
            .unwrap_or("domino")
            .to_string();
        let is_bin = norm.contains("/src/bin/") || norm.ends_with("src/main.rs");
        let is_test_file = {
            let under_crate = norm.split_once("crates/").map(|(_, r)| r).unwrap_or(&norm);
            under_crate.contains("tests/")
                || under_crate.contains("examples/")
                || under_crate.contains("benches/")
        };
        FileCtx { crate_name, is_bin, is_test_file }
    }
}

/// One rule hit, before waiver matching.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based source line.
    pub line: u32,
    /// Site-specific message (what exactly was seen).
    pub message: String,
}

/// Crates whose purpose is wall-clock measurement or driving binaries.
const WALL_CLOCK_CRATES: &[&str] = &["testkit", "bench", "lint"];
/// Crates whose state feeds scheduling decisions (D002 scope). `obs` is
/// in scope because trace analysis groups events in maps whose iteration
/// order reaches rendered reports; `campaign` is in scope because its
/// store index, ledger, and report rollups all iterate collections into
/// byte-compared artifacts — an unordered map there breaks the
/// warm-equals-cold guarantee.
const ORDERED_CRATES: &[&str] = &["scheduler", "mac", "sim", "medium", "faults", "obs", "campaign"];
/// Crates whose library code must not panic (D005 scope). `obs` is in
/// scope because trace sinks run inside every simulation: a panicking
/// observer would turn observation into a fault of its own. `campaign`
/// is in scope because cache/ledger code parses untrusted on-disk bytes:
/// corruption must surface as a recompute or an `Err`, never a panic.
const NO_PANIC_CRATES: &[&str] = &["phy", "scheduler", "mac", "sim", "faults", "obs", "campaign"];
/// Crates whose binaries must print pre-rendered strings only (D006
/// render-path extension): all user-facing formatting lives in library
/// render functions, so the text is unit-testable and byte-stable.
const RENDER_PATH_CRATES: &[&str] = &["runner", "obs"];

/// Hash-container methods that expose unordered iteration.
const ITERATION_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys",
    "into_values", "drain", "retain", "extract_if",
];

/// Run every applicable rule over one file's tokens.
pub fn check_file(ctx: &FileCtx, tokens: &[Token<'_>]) -> Vec<Finding> {
    // Rules never fire inside comments; waiver scanning (which does read
    // comments) lives in `crate::waiver`.
    let code: Vec<Token<'_>> = tokens
        .iter()
        .copied()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let in_test = test_regions(&code);

    let mut findings = Vec::new();
    d001_wall_clock(ctx, &code, &mut findings);
    d002_hash_iteration(ctx, &code, &mut findings);
    d003_float_eq(ctx, &code, &in_test, &mut findings);
    d004_ambient_rng(&code, &mut findings);
    d005_no_panic(ctx, &code, &in_test, &mut findings);
    d006_no_stdout(ctx, &code, &in_test, &mut findings);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Mark, per token, whether it sits inside `#[cfg(test)]`-gated or
/// `#[test]`-attributed code. Token-level approximation: after such an
/// attribute, everything from the next `{` at the attribute's brace level
/// to its matching `}` is test code (a `;` first cancels — `#[cfg(test)]
/// use …;`).
fn test_regions(code: &[Token<'_>]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i32 = 0;
    // (depth at which the test region's body opened) — nesting-safe.
    let mut region_floor: Option<i32> = None;
    let mut pending_attr = false;
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        match (t.kind, t.text) {
            (TokenKind::Punct, "#") if region_floor.is_none() => {
                // Attribute outside any test region: does it gate one?
                let (is_test_attr, end) = parse_attr(code, i);
                if is_test_attr {
                    pending_attr = true;
                }
                if pending_attr {
                    for flag in in_test.iter_mut().take(end).skip(i) {
                        *flag = true;
                    }
                }
                i = end;
                continue;
            }
            (TokenKind::Punct, "{") => {
                depth += 1;
                if pending_attr && region_floor.is_none() {
                    region_floor = Some(depth - 1);
                    pending_attr = false;
                }
            }
            (TokenKind::Punct, "}") => {
                depth -= 1;
                if region_floor.is_some_and(|f| depth <= f) {
                    in_test[i] = true; // the closing brace itself
                    region_floor = None;
                    i += 1;
                    continue;
                }
            }
            (TokenKind::Punct, ";") if pending_attr && region_floor.is_none() => {
                pending_attr = false; // braceless item, e.g. a gated `use`
            }
            _ => {}
        }
        if region_floor.is_some() || pending_attr {
            in_test[i] = true;
        }
        i += 1;
    }
    in_test
}

/// Inspect the attribute starting at `#` (index `i`); returns whether it
/// gates test code and the index just past its closing `]`.
///
/// Gating forms: `#[test]` as the head, or `test` appearing inside a
/// `cfg`/`cfg_attr` head — unless negated (`cfg(not(test))` is *non*-test
/// code; a `not` anywhere in the predicate conservatively disables the
/// match).
fn parse_attr(code: &[Token<'_>], i: usize) -> (bool, usize) {
    if code.get(i + 1).map(|t| t.text) != Some("[") {
        return (false, i + 1);
    }
    let head = code.get(i + 2).map(|t| t.text).unwrap_or("");
    let head_is_cfg = matches!(head, "cfg" | "cfg_attr");
    let mut is_test = head == "test";
    let mut saw_not = false;
    let mut depth = 0i32;
    let mut j = i + 1;
    while let Some(t) = code.get(j) {
        match t.text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (is_test && !saw_not, j + 1);
                }
            }
            "not" if t.kind == TokenKind::Ident => saw_not = true,
            "test" if t.kind == TokenKind::Ident && head_is_cfg => is_test = true,
            _ => {}
        }
        j += 1;
    }
    (is_test && !saw_not, j)
}

// ----------------------------------------------------------------- rules

/// D001: `std::time`, `Instant`, `SystemTime` anywhere outside the crates
/// whose whole point is wall-clock measurement.
fn d001_wall_clock(ctx: &FileCtx, code: &[Token<'_>], out: &mut Vec<Finding>) {
    if WALL_CLOCK_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hit = match t.text {
            "Instant" | "SystemTime" | "UNIX_EPOCH" => true,
            // Bare `std::time` module import. When the path continues
            // (`std::time::X`) the clock idents above report the precise
            // item instead, and `std::time::Duration` — a plain value
            // type with no ambient clock — stays legal.
            "time" => {
                i >= 2
                    && code[i - 1].text == "::"
                    && code[i - 2].text == "std"
                    && code.get(i + 1).map(|n| n.text) != Some("::")
            }
            _ => false,
        };
        if hit {
            out.push(Finding {
                rule: RuleId::D001,
                line: t.line,
                message: format!(
                    "`{}` reads the wall clock; simulated time must flow through `sim::time`",
                    if t.text == "time" { "std::time" } else { t.text }
                ),
            });
        }
    }
}

/// D002: iteration over `HashMap`/`HashSet` in the scheduling crates.
/// Tracks identifiers this file declares with a hash-container type and
/// flags (a) unordered-iteration method calls on them, (b) `for … in`
/// loops whose iterated expression mentions one, (c) such calls directly
/// on a `HashMap`/`HashSet` path.
fn d002_hash_iteration(ctx: &FileCtx, code: &[Token<'_>], out: &mut Vec<Finding>) {
    if !ORDERED_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let is_hash_ty = |t: &Token<'_>| matches!(t.text, "HashMap" | "HashSet");

    // Pass 1 — hash-typed identifiers: `name: [&][mut] HashMap<…>` or
    // `let [mut] name = HashMap::…`.
    let mut hash_idents: Vec<&str> = Vec::new();
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident || !is_hash_ty(&code[i]) {
            continue;
        }
        // Walk left over type-position noise.
        let mut j = i;
        while j > 0
            && matches!(code[j - 1].text, "&" | "mut" | "::" | "collections" | "std")
        {
            j -= 1;
        }
        if j >= 2 && code[j - 1].text == ":" && code[j - 2].kind == TokenKind::Ident {
            hash_idents.push(code[j - 2].text);
        } else if j >= 2 && code[j - 1].text == "=" {
            // `let [mut] name = HashMap::new()`
            let mut k = j - 2;
            if code[k].kind == TokenKind::Ident
                && k >= 1
                && (code[k - 1].text == "let" || (code[k - 1].text == "mut" && k >= 2))
            {
                if code[k - 1].text == "mut" {
                    k -= 1;
                }
                if k >= 1 && code[k - 1].text == "let" {
                    hash_idents.push(code[j - 2].text);
                }
            }
        }
    }
    hash_idents.sort_unstable();
    hash_idents.dedup();

    let is_hash_expr_head = |t: &Token<'_>| {
        is_hash_ty(t) || (t.kind == TokenKind::Ident && hash_idents.binary_search(&t.text).is_ok())
    };

    // Pass 2a — `recv.method()` where recv is hash-typed and method iterates.
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident || !ITERATION_METHODS.contains(&code[i].text) {
            continue;
        }
        if !(i >= 2 && code[i - 1].text == "." && code.get(i + 1).map(|t| t.text) == Some("("))
        {
            continue;
        }
        // Receiver: `map.iter()`, `self.map.iter()`, `HashMap::…` chains.
        let mut r = i - 2;
        if code[r].kind == TokenKind::Punct && matches!(code[r].text, ")" | "]") {
            continue; // call-chain receiver: can't resolve, stay quiet
        }
        let recv = code[r];
        // Skip a `self.` / path prefix to the field/var name itself.
        if r >= 2 && code[r - 1].text == "." {
            r -= 2;
        }
        if is_hash_expr_head(&recv) || is_hash_expr_head(&code[r]) {
            out.push(Finding {
                rule: RuleId::D002,
                line: code[i].line,
                message: format!(
                    "`{}.{}()` iterates a hash container in `{}`; use BTreeMap/BTreeSet or sort first",
                    recv.text, code[i].text, ctx.crate_name
                ),
            });
        }
    }

    // Pass 2b — `for pat in expr {`: expr mentioning a hash-typed ident.
    let mut i = 0;
    while i < code.len() {
        if code[i].text == "for" && code[i].kind == TokenKind::Ident {
            // Find `in` at bracket depth 0, then the body `{` at depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut in_idx = None;
            while let Some(t) = code.get(j) {
                match t.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "in" if depth == 0 && t.kind == TokenKind::Ident => {
                        in_idx = Some(j);
                        break;
                    }
                    "{" | ";" => break, // not a for-loop header after all
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = in_idx {
                let mut k = start + 1;
                let mut depth = 0i32;
                while let Some(t) = code.get(k) {
                    match t.text {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {
                            if depth >= 0 && t.kind == TokenKind::Ident && is_hash_expr_head(t)
                            {
                                out.push(Finding {
                                    rule: RuleId::D002,
                                    line: t.line,
                                    message: format!(
                                        "`for … in` over hash container `{}` in `{}`; iteration order is unspecified",
                                        t.text, ctx.crate_name
                                    ),
                                });
                            }
                        }
                    }
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }

    // Findings from 2a and 2b can overlap (`for x in map.keys()`); dedup
    // by line, keeping the first (method-call) message.
    out.sort_by_key(|f| (f.rule, f.line));
    out.dedup_by(|a, b| a.rule == RuleId::D002 && b.rule == RuleId::D002 && a.line == b.line);
}

/// D003: `==` / `!=` with a float literal on either side. Test code is
/// exempt: exact-value pins (`tests/golden.rs`) are deliberate there.
fn d003_float_eq(
    ctx: &FileCtx,
    code: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    if ctx.is_test_file {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if !(t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let left_float = i >= 1 && code[i - 1].kind == TokenKind::Float;
        // Right side: skip one unary minus.
        let mut r = i + 1;
        if code.get(r).map(|t| t.text) == Some("-") {
            r += 1;
        }
        let right_float = code.get(r).is_some_and(|t| t.kind == TokenKind::Float);
        if left_float || right_float {
            out.push(Finding {
                rule: RuleId::D003,
                line: t.line,
                message: format!(
                    "float `{}` comparison; use a tolerance or `total_cmp`",
                    t.text
                ),
            });
        }
    }
}

/// D004: ambient randomness. The `rand` crate is not even a dependency
/// (hermetic build), so any mention is either dead weight or an attempt to
/// reintroduce it; OS entropy names are flagged for the same reason.
fn d004_ambient_rng(code: &[Token<'_>], out: &mut Vec<Finding>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hit = match t.text {
            "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => true,
            // Any `rand::` path — but when the next segment is itself in
            // the list above, that ident reports alone (no double count).
            "rand" => {
                code.get(i + 1).map(|n| n.text) == Some("::")
                    && !code.get(i + 2).is_some_and(|n| {
                        matches!(n.text, "thread_rng" | "OsRng" | "from_entropy" | "getrandom")
                    })
            }
            _ => false,
        };
        if hit {
            out.push(Finding {
                rule: RuleId::D004,
                line: t.line,
                message: format!(
                    "`{}` is ambient randomness; derive from SimRng with explicit (seed, stream)",
                    t.text
                ),
            });
        }
    }
}

/// D005: panicking constructs in non-test library code of the core crates.
fn d005_no_panic(
    ctx: &FileCtx,
    code: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    if !NO_PANIC_CRATES.contains(&ctx.crate_name.as_str()) || ctx.is_bin || ctx.is_test_file {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let next = code.get(i + 1).map(|n| n.text);
        let (hit, what) = match t.text {
            "unwrap" | "expect" => (
                i >= 1 && code[i - 1].text == "." && next == Some("("),
                format!(".{}()", t.text),
            ),
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                (next == Some("!"), format!("{}!", t.text))
            }
            _ => (false, String::new()),
        };
        if hit {
            out.push(Finding {
                rule: RuleId::D005,
                line: t.line,
                message: format!(
                    "`{what}` in `{}` library code; return an error or make the invariant a type",
                    ctx.crate_name
                ),
            });
        }
    }
}

/// D006: stdout/stderr from library code. Binaries, examples, integration
/// tests and `#[cfg(test)]` code may print; libraries report through
/// `stats`.
///
/// Render-path extension: the binaries of [`RENDER_PATH_CRATES`] (the
/// user-facing `domino-run` / `domino-trace` CLIs) may print, but only
/// pre-rendered strings — a print macro whose format literal carries an
/// inline format spec (`{:…}`) is formatting at the print site, which
/// belongs in the library's `render_*` functions where it is unit-tested
/// and byte-stable.
fn d006_no_stdout(
    ctx: &FileCtx,
    code: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    if ctx.is_bin || ctx.is_test_file {
        if ctx.is_bin
            && !ctx.is_test_file
            && RENDER_PATH_CRATES.contains(&ctx.crate_name.as_str())
        {
            d006_render_path(ctx, code, in_test, out);
        }
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !matches!(t.text, "println" | "eprintln" | "print" | "eprint" | "dbg") {
            continue;
        }
        if code.get(i + 1).map(|n| n.text) != Some("!") {
            continue;
        }
        out.push(Finding {
            rule: RuleId::D006,
            line: t.line,
            message: format!(
                "`{}!` in library code; route diagnostics through the run report / stats",
                t.text
            ),
        });
    }
}

/// D006 render-path extension body: flag print macros in a render-path
/// binary whose format literal contains an inline format spec (`{:`).
/// `dbg!` is flagged unconditionally — it is never user-facing output.
fn d006_render_path(
    ctx: &FileCtx,
    code: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if code.get(i + 1).map(|n| n.text) != Some("!") {
            continue;
        }
        let dbg = t.text == "dbg";
        if !dbg && !matches!(t.text, "println" | "eprintln" | "print" | "eprint") {
            continue;
        }
        // First argument: the format literal right after `!(`.
        let lit = code
            .get(i + 2)
            .filter(|n| n.text == "(")
            .and_then(|_| code.get(i + 3))
            .filter(|n| matches!(n.kind, TokenKind::Str | TokenKind::RawStr));
        let inline_spec = lit.is_some_and(|l| l.text.contains("{:"));
        if dbg || inline_spec {
            out.push(Finding {
                rule: RuleId::D006,
                line: t.line,
                message: if dbg {
                    format!("`dbg!` in the `{}` binary; it is never user-facing output", ctx.crate_name)
                } else {
                    format!(
                        "`{}!` with an inline format spec in the `{}` binary; \
                         pre-render the text in a library `render_*` function",
                        t.text, ctx.crate_name
                    )
                },
            });
        }
    }
}

// ------------------------------------------------------- semantic rules

/// Crates whose float reductions feed golden outputs (D009 scope). `phy`
/// is deliberately out: its DSP folds run inside one signature's sample
/// buffer where evaluation order is fixed by construction, and the
/// results reach the goldens only through `medium`/`mac` (in scope).
const FLOAT_ORDER_CRATES: &[&str] = &["sim", "medium", "mac", "scheduler", "faults"];
/// Crates exempt from D008: `testkit` defines the RNG substrate itself;
/// `lint` mentions stream idioms in rule text and fixtures.
const STREAM_EXEMPT_CRATES: &[&str] = &["testkit", "lint"];

/// Run the file-local semantic rules over one parsed file: D008 (bare
/// stream literals), D009 (float reduction order), D010 (index/sim-time
/// arithmetic) and the D003 let-bound-float extension. The cross-file
/// halves of D007/D008 live in [`crate::callgraph`].
pub fn check_semantic(ctx: &FileCtx, parsed: &ParsedFile<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in parsed.fns.iter() {
        d008_literal_stream(ctx, f.is_test, &f.body, &mut out);
        if f.is_test {
            continue;
        }
        d003_float_local(ctx, &f.body, &mut out);
        d009_float_order(ctx, &f.body, &mut out);
        d010_unchecked_arith(ctx, &f.body, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.rule));
    // One finding per (rule, line): flat binary parsing can visit a site
    // twice, and the token-level D003 may coincide with the extension.
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

/// Strip single-child `Opaque`/`Block` wrappers (parenthesization noise).
fn peel<'e, 'a>(mut e: &'e Expr<'a>) -> &'e Expr<'a> {
    while let Expr::Opaque(inner) | Expr::Block(inner) = e {
        match inner.as_slice() {
            [only] => e = only,
            _ => break,
        }
    }
    e
}

/// Does any node in this subtree smell like `f64`/`f32`?
fn has_float_hint(e: &Expr<'_>) -> bool {
    let mut hit = false;
    e.walk(&mut |x| {
        hit = hit
            || match x {
                Expr::Float { .. } => true,
                Expr::Cast { ty, .. } | Expr::Let { ty, .. } => {
                    ty.iter().any(|t| matches!(*t, "f64" | "f32"))
                }
                Expr::Path { segs, .. } => segs.iter().any(|s| matches!(*s, "f64" | "f32")),
                Expr::Method { turbofish, .. } => {
                    turbofish.iter().any(|t| matches!(*t, "f64" | "f32"))
                }
                _ => false,
            };
    });
    hit
}

/// D008, file-local half: a `SimRng::derive(seed, <int literal>)` stream
/// id. Applies to test code too — a test colliding with a production
/// stream silently correlates the sequences it asserts on.
fn d008_literal_stream(
    ctx: &FileCtx,
    _is_test: bool,
    body: &[Expr<'_>],
    out: &mut Vec<Finding>,
) {
    if STREAM_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for e in body {
        e.walk(&mut |x| {
            let Expr::Call { callee, args, line } = x else { return };
            let Expr::Path { segs, .. } = &**callee else { return };
            let assoc = segs.len() >= 2
                && segs.last() == Some(&"derive")
                && matches!(segs[segs.len() - 2], "SimRng" | "Rng");
            if !assoc {
                return;
            }
            if let Some(Expr::Int { text, .. }) = args.get(1).map(peel) {
                out.push(Finding {
                    rule: RuleId::D008,
                    line: *line,
                    message: format!(
                        "bare stream id `{text}` in `SimRng::derive`; name it in a `streams` module constant"
                    ),
                });
            }
        });
    }
}

/// D003 extension: `==`/`!=` where an operand is a local `let` bound
/// directly to a float literal in the same function. The token rule only
/// sees literal operands; `let eps = 1e-9; … x == eps` slipped past it.
fn d003_float_local(ctx: &FileCtx, body: &[Expr<'_>], out: &mut Vec<Finding>) {
    if ctx.is_test_file {
        return;
    }
    let mut float_locals: Vec<&str> = Vec::new();
    for e in body {
        e.walk(&mut |x| {
            if let Expr::Let { name: Some(n), init: Some(init), .. } = x {
                if matches!(peel(init), Expr::Float { .. }) {
                    float_locals.push(n);
                }
            }
        });
    }
    if float_locals.is_empty() {
        return;
    }
    let is_float_local = |e: &Expr<'_>| {
        matches!(peel(e), Expr::Path { segs, .. }
            if segs.len() == 1 && float_locals.contains(&segs[0]))
    };
    for e in body {
        e.walk(&mut |x| {
            if let Expr::Binary { op: op @ ("==" | "!="), lhs, rhs, line } = x {
                if is_float_local(lhs) || is_float_local(rhs) {
                    out.push(Finding {
                        rule: RuleId::D003,
                        line: *line,
                        message: format!(
                            "float-bound local compared with `{op}`; use a tolerance or `total_cmp`"
                        ),
                    });
                }
            }
        });
    }
}

/// Order-sensitive sort/search adapters whose comparator decides order.
const COMPARATOR_SINKS: &[&str] = &[
    "sort_by", "sort_unstable_by", "sort_by_key", "sort_unstable_by_key", "max_by", "min_by",
    "max_by_key", "min_by_key", "binary_search_by",
];

/// D009: float reductions and `partial_cmp`-based ordering in the crates
/// whose float results feed goldens. Reassociating a sum or letting a
/// NaN-partial comparator pick an order moves pinned outputs.
fn d009_float_order(ctx: &FileCtx, body: &[Expr<'_>], out: &mut Vec<Finding>) {
    if !FLOAT_ORDER_CRATES.contains(&ctx.crate_name.as_str())
        || ctx.is_bin
        || ctx.is_test_file
    {
        return;
    }
    // `let x: f64 = it.sum();` hints float-ness through the ascription;
    // track it while descending.
    fn walk(e: &Expr<'_>, in_float_let: bool, out: &mut Vec<Finding>) {
        if let Expr::Let { ty, init: Some(init), .. } = e {
            let fl = in_float_let || ty.iter().any(|t| matches!(*t, "f64" | "f32"));
            walk(init, fl, out);
            return;
        }
        if let Expr::Method { name, turbofish, recv, args, line } = e {
            let tf_float = turbofish.iter().any(|t| matches!(*t, "f64" | "f32"));
            match *name {
                "sum" | "product"
                    if tf_float
                        || (turbofish.is_empty() && (in_float_let || has_float_hint(recv))) =>
                {
                    out.push(Finding {
                        rule: RuleId::D009,
                        line: *line,
                        message: format!(
                            "float `.{name}()` reduction; reassociation moves goldens — keep the pinned loop order explicit"
                        ),
                    });
                }
                "fold" if args.first().is_some_and(has_float_hint) => {
                    out.push(Finding {
                        rule: RuleId::D009,
                        line: *line,
                        message: "float `fold` reduction; reassociation moves goldens — keep the pinned loop order explicit".to_string(),
                    });
                }
                _ if COMPARATOR_SINKS.contains(name) => {
                    let uses_partial = args.iter().any(|a| {
                        let mut hit = false;
                        a.walk(&mut |x| {
                            hit = hit
                                || match x {
                                    Expr::Method { name, .. } => *name == "partial_cmp",
                                    Expr::Path { segs, .. } => {
                                        segs.last() == Some(&"partial_cmp")
                                    }
                                    _ => false,
                                };
                        });
                        hit
                    });
                    if uses_partial {
                        out.push(Finding {
                            rule: RuleId::D009,
                            line: *line,
                            message: format!(
                                "`.{name}` with `partial_cmp`; NaN makes the order unspecified — use `total_cmp`"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        for c in e.children() {
            walk(c, in_float_let, out);
        }
    }
    for e in body {
        walk(e, false, out);
    }
}

/// Sim-time accessor methods whose integer results D010 guards.
const SIM_TIME_ACCESSORS: &[&str] = &["as_nanos", "as_micros", "as_millis", "as_secs"];

/// D010: raw `xs[i ± j]` indexing (out-of-bounds panics in exactly the
/// crates D005 keeps panic-free) and unchecked `+`/`-` directly on
/// `as_nanos()`-style sim-time integers (quiet wrap in release mode
/// corrupts the schedule instead of failing).
fn d010_unchecked_arith(ctx: &FileCtx, body: &[Expr<'_>], out: &mut Vec<Finding>) {
    if !NO_PANIC_CRATES.contains(&ctx.crate_name.as_str()) || ctx.is_bin || ctx.is_test_file {
        return;
    }
    for e in body {
        e.walk(&mut |x| match x {
            Expr::Index { index, line, .. } => {
                if let Expr::Binary { op: op @ ("+" | "-"), .. } = peel(index) {
                    out.push(Finding {
                        rule: RuleId::D010,
                        line: *line,
                        message: format!(
                            "raw `[i {op} j]` indexing in `{}`; use `get(..)` or checked index math",
                            ctx.crate_name
                        ),
                    });
                }
            }
            Expr::Binary { op: op @ ("+" | "-"), lhs, rhs, line } => {
                let is_time = |e: &Expr<'_>| {
                    matches!(peel(e), Expr::Method { name, .. }
                        if SIM_TIME_ACCESSORS.contains(name))
                };
                if is_time(lhs) || is_time(rhs) {
                    out.push(Finding {
                        rule: RuleId::D010,
                        line: *line,
                        message: format!(
                            "unchecked `{op}` on a sim-time integer; use checked/saturating math or `SimTime` ops"
                        ),
                    });
                }
            }
            _ => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn ctx(path: &str) -> FileCtx {
        FileCtx::from_path(path)
    }

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(&ctx(path), &tokenize(src))
    }

    #[test]
    fn file_ctx_classification() {
        let c = ctx("crates/scheduler/src/converter.rs");
        assert_eq!(c.crate_name, "scheduler");
        assert!(!c.is_bin && !c.is_test_file);
        assert!(ctx("crates/bench/src/bin/run_all.rs").is_bin);
        assert!(ctx("tests/golden.rs").is_test_file);
        assert_eq!(ctx("src/lib.rs").crate_name, "domino");
        assert!(ctx("examples/quickstart.rs").is_test_file);
    }

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let f = run("crates/sim/src/engine.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn test_attr_on_fn_is_exempt() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }";
        let f = run("crates/sim/src/engine.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn wheel_module_is_in_d005_scope() {
        // The timer wheel is library code of `sim`: panicking constructs
        // outside tests must be flagged.
        let src = "fn cascade() { slot.unwrap(); }";
        let f = run("crates/sim/src/wheel.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::D005);
    }

    #[test]
    fn oracle_module_is_in_d002_scope() {
        // The differential oracle feeds pass/fail decisions off event
        // order; HashMap iteration there is nondeterminism waiting to
        // happen and must be flagged.
        let src = "fn drain(m: &HashMap<u64, u32>) { for (k, v) in m.iter() { use_it(k, v); } }";
        let f = run("crates/sim/src/oracle.rs", src);
        assert!(f.iter().any(|x| x.rule == RuleId::D002), "{f:?}");
    }

    #[test]
    fn campaign_store_is_in_d002_scope() {
        // The cache index is iterated into a byte-compared listing; an
        // unordered map there breaks warm-equals-cold report identity.
        let src = "fn list(m: &HashMap<String, u64>) { for (k, v) in m.iter() { emit(k, v); } }";
        let f = run("crates/campaign/src/store.rs", src);
        assert!(f.iter().any(|x| x.rule == RuleId::D002), "{f:?}");
    }

    #[test]
    fn campaign_ledger_is_in_d005_scope() {
        // Ledger/cache code parses untrusted on-disk bytes; corruption
        // must become a recompute or an Err, never a panic.
        let src = "fn parse(line: &str) { line.split(' ').next().unwrap(); }";
        let f = run("crates/campaign/src/ledger.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::D005);
    }

    #[test]
    fn differential_test_file_is_exempt() {
        let src = "fn t() { x.unwrap(); }";
        let f = run("crates/sim/tests/differential.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    // ------------------------------------------------- semantic rules

    fn run_sem(path: &str, src: &str) -> Vec<Finding> {
        check_semantic(&ctx(path), &crate::parser::parse(&tokenize(src)))
    }

    #[test]
    fn d008_flags_bare_literal_streams_even_in_tests() {
        let src = "#[test]\nfn t() { let r = SimRng::derive(7, 3); }";
        let f = run_sem("crates/sim/src/rng.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::D008);
        let named = "fn f(seed: u64) { let r = SimRng::derive(seed, streams::WIRED_JITTER); }";
        assert!(run_sem("crates/sim/src/rng.rs", named).is_empty());
    }

    #[test]
    fn d009_turbofish_sum_and_let_ascription() {
        let f = run_sem(
            "crates/medium/src/medium.rs",
            "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }",
        );
        assert_eq!(f.iter().filter(|x| x.rule == RuleId::D009).count(), 1, "{f:?}");
        let f = run_sem(
            "crates/medium/src/medium.rs",
            "fn f() { let mw: f64 = xs.iter().map(|x| x.power).sum(); }",
        );
        assert_eq!(f.iter().filter(|x| x.rule == RuleId::D009).count(), 1, "{f:?}");
        // Integer sums stay quiet.
        let f = run_sem(
            "crates/mac/src/workload.rs",
            "fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }",
        );
        assert!(f.is_empty(), "{f:?}");
        // phy is out of D009 scope.
        let f = run_sem("crates/phy/src/ofdm.rs", "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }");
        assert!(f.iter().all(|x| x.rule != RuleId::D009), "{f:?}");
    }

    #[test]
    fn d009_partial_cmp_sorts_and_float_folds() {
        let f = run_sem(
            "crates/scheduler/src/rank.rs",
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::D009), "{f:?}");
        let f = run_sem(
            "crates/mac/src/x.rs",
            "fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::D009), "{f:?}");
        // total_cmp sorts are the sanctioned form.
        let f = run_sem(
            "crates/scheduler/src/rank.rs",
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d010_index_arithmetic_and_sim_time() {
        let f = run_sem(
            "crates/phy/src/signature.rs",
            "fn f(s: &[f64], t: usize, lag: usize) -> f64 { s[t + lag] }",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::D010), "{f:?}");
        let f = run_sem(
            "crates/sim/src/time.rs",
            "fn f(a: SimTime, d: u64) -> u64 { a.as_nanos() + d }",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::D010), "{f:?}");
        // Plain indexing and checked math stay quiet.
        let f = run_sem(
            "crates/sim/src/wheel.rs",
            "fn f(s: &[u64], i: usize) -> u64 { s[i] + s.len() as u64 }",
        );
        assert!(f.is_empty(), "{f:?}");
        // Out-of-scope crate (topology) never fires.
        let f = run_sem("crates/topology/src/grid.rs", "fn f(s: &[u64], i: usize) -> u64 { s[i - 1] }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d003_extension_catches_float_bound_locals() {
        let f = run_sem(
            "crates/mac/src/x.rs",
            "fn f(x: f64) -> bool { let eps = 1e-9; x == eps }",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::D003), "{f:?}");
        // A non-float local, or a tolerance comparison, stays quiet.
        let f = run_sem(
            "crates/mac/src/x.rs",
            "fn f(x: f64) -> bool { let eps = 1e-9; (x - y).abs() < eps }",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::D003), "{f:?}");
        let f = run_sem("crates/mac/src/x.rs", "fn f(n: u64) -> bool { let k = 3; n == k }");
        assert!(f.is_empty(), "{f:?}");
    }
}
