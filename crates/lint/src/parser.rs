//! A forgiving recursive-descent parser over the token stream.
//!
//! The token-level rules (D001–D006) see one flat stream; the semantic
//! rules (D007–D010) need *structure*: which function a token lives in,
//! what an expression's call chain looks like, which argument of a call a
//! literal sits in. This module supplies exactly as much structure as
//! those rules consume and no more:
//!
//! * a **token-tree** layer (`(…)`, `[…]`, `{…}` groups, comments
//!   dropped) that makes bracket matching a non-problem for everything
//!   above it;
//! * an **item scanner** that finds `fn` items (with their `impl`/`trait`
//!   owner type and `#[cfg(test)]`/`#[test]` gating), walks `mod` blocks,
//!   and collects `const` definitions inside modules named `streams` (the
//!   RNG stream registries D008 audits);
//! * an **expression parser** that turns each function body into a small
//!   [`Expr`] tree: paths, calls, method chains with turbofish, field and
//!   index access, binary/cast expressions, closures, `let` bindings with
//!   their ascribed type.
//!
//! The grammar is deliberately *approximate*. Anything the parser does
//! not model (struct literals, patterns, attribute internals) degrades
//! into [`Expr::Opaque`] groupings whose sub-expressions are still
//! visited — rules stay conservative, never blind. Two hard guarantees,
//! pinned by a property test over arbitrary byte strings
//! (`tests/parser_fuzz.rs`):
//!
//! 1. **No panics**, on any input. The parser runs on every workspace
//!    file including half-saved ones.
//! 2. **Termination**: every parsing loop consumes at least one token
//!    tree per iteration (enforced by a force-progress check in the
//!    statement loop).

use crate::tokenizer::{Token, TokenKind};

// ------------------------------------------------------------ token trees

/// One node of the bracket-matched token-tree layer.
#[derive(Clone, Debug)]
pub enum Tree<'a> {
    /// A non-delimiter token.
    Leaf(Token<'a>),
    /// A `(…)`, `[…]` or `{…}` group (identified by its opening byte).
    Group {
        /// `b'('`, `b'['` or `b'{'`.
        delim: u8,
        /// Line of the opening delimiter.
        line: u32,
        /// The trees between the delimiters.
        trees: Vec<Tree<'a>>,
    },
}

impl<'a> Tree<'a> {
    /// The leaf's token text, or `""` for groups.
    fn text(&self) -> &'a str {
        match self {
            Tree::Leaf(t) => t.text,
            Tree::Group { .. } => "",
        }
    }

    /// The leaf token, if this is a leaf.
    fn leaf(&self) -> Option<&Token<'a>> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group { .. } => None,
        }
    }

    /// Source line of this tree's first token.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }
}

/// Group comment-free tokens into bracket-matched trees. Unmatched
/// closers become leaves; unclosed groups end at EOF.
pub fn build_trees<'a>(tokens: &[Token<'a>]) -> Vec<Tree<'a>> {
    // (delim, line, children) per open group.
    let mut stack: Vec<(u8, u32, Vec<Tree<'a>>)> = Vec::new();
    let mut top: Vec<Tree<'a>> = Vec::new();
    for t in tokens {
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        match t.text {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => {
                stack.push((t.text.as_bytes()[0], t.line, Vec::new()));
            }
            ")" | "]" | "}" if t.kind == TokenKind::Punct => {
                // Close the innermost group even on a delimiter mismatch
                // (half-saved input); a closer with nothing open is a leaf.
                match stack.pop() {
                    Some((delim, line, trees)) => {
                        let group = Tree::Group { delim, line, trees };
                        match stack.last_mut() {
                            Some((_, _, parent)) => parent.push(group),
                            None => top.push(group),
                        }
                    }
                    None => top.push(Tree::Leaf(*t)),
                }
            }
            _ => match stack.last_mut() {
                Some((_, _, parent)) => parent.push(Tree::Leaf(*t)),
                None => top.push(Tree::Leaf(*t)),
            },
        }
    }
    // Unclosed groups: collapse inside-out.
    while let Some((delim, line, trees)) = stack.pop() {
        let group = Tree::Group { delim, line, trees };
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(group),
            None => top.push(group),
        }
    }
    top
}

// ------------------------------------------------------------ parsed items

/// One `fn` item with its parsed body.
#[derive(Clone, Debug)]
pub struct FnItem<'a> {
    /// The function's simple name.
    pub name: &'a str,
    /// The `impl`/`trait` type it is defined on, if any.
    pub owner: Option<&'a str>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]`-gated code or carrying `#[test]`.
    pub is_test: bool,
    /// The body's statement expressions.
    pub body: Vec<Expr<'a>>,
}

/// A `const NAME: u64 = <int>;` inside a module named `streams` — the
/// registry convention for [`SimRng`] stream labels D008 audits.
#[derive(Clone, Debug)]
pub struct StreamConst<'a> {
    /// Constant name.
    pub name: &'a str,
    /// Parsed integer value (`None` when the initializer is not a plain
    /// integer literal).
    pub value: Option<u64>,
    /// Line of the constant's name.
    pub line: u32,
}

/// Everything the item scanner extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile<'a> {
    /// All `fn` items (free, inherent, trait-default), in source order.
    pub fns: Vec<FnItem<'a>>,
    /// Stream-label constants (`mod streams { const … }`).
    pub stream_consts: Vec<StreamConst<'a>>,
}

/// Parse one file's tokens into items and expression trees.
pub fn parse<'a>(tokens: &[Token<'a>]) -> ParsedFile<'a> {
    let trees = build_trees(tokens);
    let mut out = ParsedFile::default();
    scan_items(&trees, None, false, false, &mut out);
    out
}

/// Item keywords that end an attribute's scope without opening a body we
/// model: skip to the item's end and continue.
const SKIPPED_ITEMS: &[&str] =
    &["struct", "enum", "union", "use", "static", "type", "macro_rules", "extern"];

/// Walk one tree level collecting items. `owner` is the enclosing
/// `impl`/`trait` type, `in_test` whether an enclosing item was
/// test-gated, `in_streams` whether the enclosing module is `streams`.
fn scan_items<'a>(
    trees: &[Tree<'a>],
    owner: Option<&'a str>,
    in_test: bool,
    in_streams: bool,
    out: &mut ParsedFile<'a>,
) {
    let mut pending_test = false;
    let mut i = 0;
    while i < trees.len() {
        let t = &trees[i];
        match t.text() {
            "#" => {
                // `#[…]` / `#![…]`: mark test gating, ignore otherwise.
                let mut j = i + 1;
                if trees.get(j).map(Tree::text) == Some("!") {
                    j += 1;
                }
                if let Some(Tree::Group { delim: b'[', trees: attr, .. }) = trees.get(j) {
                    if attr_gates_test(attr) {
                        pending_test = true;
                    }
                    i = j + 1;
                } else {
                    i += 1;
                }
                continue;
            }
            "mod" => {
                let name = trees.get(i + 1).map(Tree::text).unwrap_or("");
                // `mod name { … }` (an out-of-line `mod name;` has no body).
                let mut j = i + 2;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group { delim: b'{', trees: body, .. } => {
                            scan_items(
                                body,
                                None,
                                in_test || pending_test,
                                name == "streams",
                                out,
                            );
                            break;
                        }
                        Tree::Leaf(l) if l.text == ";" => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
                pending_test = false;
                continue;
            }
            "impl" | "trait" => {
                // Header runs to the first `{` group at this level.
                let mut j = i + 1;
                let mut header: Vec<&Tree<'a>> = Vec::new();
                let mut body: Option<&[Tree<'a>]> = None;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group { delim: b'{', trees: b, .. } => {
                            body = Some(b);
                            break;
                        }
                        Tree::Leaf(l) if l.text == ";" => break,
                        tree => header.push(tree),
                    }
                    j += 1;
                }
                let ty = impl_owner(&header);
                if let Some(body) = body {
                    scan_items(body, ty, in_test || pending_test, false, out);
                }
                i = j + 1;
                pending_test = false;
                continue;
            }
            "fn" => {
                let name = match trees.get(i + 1).and_then(Tree::leaf) {
                    Some(l) if l.kind == TokenKind::Ident => l.text,
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let line = t.line();
                // Body: first `{` group after the signature at this level.
                let mut j = i + 2;
                let mut body: Vec<Expr<'a>> = Vec::new();
                let mut had_body = false;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group { delim: b'{', trees: b, .. } => {
                            body = parse_block(b);
                            had_body = true;
                            break;
                        }
                        Tree::Leaf(l) if l.text == ";" => break, // trait method decl
                        _ => j += 1,
                    }
                }
                if had_body {
                    out.fns.push(FnItem {
                        name,
                        owner,
                        line,
                        is_test: in_test || pending_test,
                        body,
                    });
                }
                i = j + 1;
                pending_test = false;
                continue;
            }
            "const" if in_streams => {
                // `const NAME: u64 = <int>;`
                if let Some(l) = trees.get(i + 1).and_then(Tree::leaf) {
                    if l.kind == TokenKind::Ident {
                        let mut value = None;
                        let mut j = i + 2;
                        while j < trees.len() {
                            match trees[j].text() {
                                ";" => break,
                                "=" => {
                                    value = trees
                                        .get(j + 1)
                                        .and_then(Tree::leaf)
                                        .filter(|v| v.kind == TokenKind::Int)
                                        .and_then(|v| parse_int(v.text));
                                    // Any further token (arithmetic, a
                                    // path) voids the plain-literal read.
                                    if trees.get(j + 2).map(Tree::text) != Some(";") {
                                        value = None;
                                    }
                                    break;
                                }
                                _ => j += 1,
                            }
                        }
                        out.stream_consts.push(StreamConst { name: l.text, value, line: l.line });
                    }
                }
                i += 1;
                pending_test = false;
                continue;
            }
            s if SKIPPED_ITEMS.contains(&s) => {
                // Consume to the end of the item: `;` or its `{ … }` body.
                let mut j = i + 1;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group { delim: b'{', .. } => break,
                        Tree::Leaf(l) if l.text == ";" => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
                pending_test = false;
                continue;
            }
            // Visibility/qualifier tokens keep a pending attribute alive
            // (`#[test] pub fn …`); anything else clears it.
            "pub" | "async" | "default" | "crate" => {}
            _ => pending_test = false,
        }
        i += 1;
    }
}

/// Does a `#[…]` attribute body gate test code? Same semantics as the
/// token-level `rules::parse_attr`: `test` as the head, or `test` inside
/// a `cfg`/`cfg_attr` head, unless a `not` appears anywhere.
fn attr_gates_test(attr: &[Tree<'_>]) -> bool {
    let head = attr.first().map(Tree::text).unwrap_or("");
    if head == "test" {
        return true;
    }
    if !matches!(head, "cfg" | "cfg_attr") {
        return false;
    }
    fn scan(trees: &[Tree<'_>], saw_test: &mut bool, saw_not: &mut bool) {
        for t in trees {
            match t {
                Tree::Leaf(l) if l.kind == TokenKind::Ident => match l.text {
                    "test" => *saw_test = true,
                    "not" => *saw_not = true,
                    _ => {}
                },
                Tree::Group { trees, .. } => scan(trees, saw_test, saw_not),
                _ => {}
            }
        }
    }
    let (mut saw_test, mut saw_not) = (false, false);
    scan(attr, &mut saw_test, &mut saw_not);
    saw_test && !saw_not
}

/// The owner type named by an `impl`/`trait` header: the last
/// angle-depth-0 identifier (after `for`, when present; before `where`).
/// `impl<E: Debug> Engine<E>` → `Engine`; `impl Tracer for MemTracer` →
/// `MemTracer`; `trait Tracer` → `Tracer`.
fn impl_owner<'a>(header: &[&Tree<'a>]) -> Option<&'a str> {
    let mut depth = 0i32;
    let mut owner = None;
    for t in header {
        let Some(l) = t.leaf() else { continue };
        match l.text {
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            "where" if depth <= 0 => break,
            "for" if depth <= 0 => owner = None,
            _ if l.kind == TokenKind::Ident && depth <= 0 => owner = Some(l.text),
            _ => {}
        }
    }
    owner
}

/// Parse `"0x0A"` / `"1_000"` / `"7u64"`-style integer literal text.
pub fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    // Strip a type suffix (`u64`, `usize`, …).
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(digits.len(), |(i, _)| i);
    u64::from_str_radix(&digits[..end], radix).ok()
}

// ------------------------------------------------------------ expressions

/// A simplified expression tree. Unmodeled constructs degrade into
/// [`Expr::Opaque`]; rules walk every variant's children, so nothing a
/// rule cares about hides inside an unmodeled parent.
#[derive(Clone, Debug)]
pub enum Expr<'a> {
    /// `a::b::c` (single identifiers included).
    Path {
        /// The `::`-separated segments (turbofish types stripped).
        segs: Vec<&'a str>,
        /// Line of the first segment.
        line: u32,
    },
    /// Integer literal.
    Int {
        /// Verbatim literal text.
        text: &'a str,
        /// Source line.
        line: u32,
    },
    /// Float literal (sign-insensitive: `-1.0` parses to this too).
    Float {
        /// Source line.
        line: u32,
    },
    /// String/char/lifetime literal (contents never matter to rules).
    OtherLit {
        /// Source line.
        line: u32,
    },
    /// `callee(args…)` where callee is any expression (usually a path).
    Call {
        /// The called expression.
        callee: Box<Expr<'a>>,
        /// Top-level comma-split arguments.
        args: Vec<Expr<'a>>,
        /// Line of the opening parenthesis.
        line: u32,
    },
    /// `recv.name::<T>(args…)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr<'a>>,
        /// Method name.
        name: &'a str,
        /// Turbofish type identifiers, when present.
        turbofish: Vec<&'a str>,
        /// Top-level comma-split arguments.
        args: Vec<Expr<'a>>,
        /// Line of the method name.
        line: u32,
    },
    /// `base.name` / `base.0` field access.
    Field {
        /// Base expression.
        base: Box<Expr<'a>>,
        /// Field name (tuple indices arrive as their digit text).
        name: &'a str,
        /// Line of the field name.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr<'a>>,
        /// The bracketed expression.
        index: Box<Expr<'a>>,
        /// Line of the opening bracket.
        line: u32,
    },
    /// `name!(…)` macro invocation.
    Macro {
        /// Macro name (last path segment).
        name: &'a str,
        /// Parsed delimiter contents (statement soup).
        args: Vec<Expr<'a>>,
        /// Line of the macro name.
        line: u32,
    },
    /// `lhs op rhs`, left-associative, no precedence (rules only inspect
    /// one operator level at a time).
    Binary {
        /// Operator text (`+`, `==`, …).
        op: &'a str,
        /// Left operand.
        lhs: Box<Expr<'a>>,
        /// Right operand.
        rhs: Box<Expr<'a>>,
        /// Line of the operator.
        line: u32,
    },
    /// `expr as Ty`.
    Cast {
        /// The cast expression.
        expr: Box<Expr<'a>>,
        /// Target type path segments.
        ty: Vec<&'a str>,
        /// Line of the `as`.
        line: u32,
    },
    /// `let name: ty = init;`.
    Let {
        /// Bound name for a simple identifier pattern, else `None`.
        name: Option<&'a str>,
        /// Ascribed type identifiers (empty without ascription).
        ty: Vec<&'a str>,
        /// Initializer.
        init: Option<Box<Expr<'a>>>,
        /// Line of the `let`.
        line: u32,
    },
    /// `|args| body` / `move || body`.
    Closure {
        /// The body expression(s).
        body: Vec<Expr<'a>>,
        /// Line of the opening `|`.
        line: u32,
    },
    /// `{ … }` block (also `match` arm soup and control-flow bodies).
    Block(Vec<Expr<'a>>),
    /// Anything else with visitable children.
    Opaque(Vec<Expr<'a>>),
}

impl<'a> Expr<'a> {
    /// Child expressions, for generic tree walks.
    pub fn children(&self) -> Vec<&Expr<'a>> {
        match self {
            Expr::Path { .. }
            | Expr::Int { .. }
            | Expr::Float { .. }
            | Expr::OtherLit { .. } => Vec::new(),
            Expr::Call { callee, args, .. } => {
                std::iter::once(&**callee).chain(args.iter()).collect()
            }
            Expr::Method { recv, args, .. } => {
                std::iter::once(&**recv).chain(args.iter()).collect()
            }
            Expr::Field { base, .. } => vec![base],
            Expr::Index { base, index, .. } => vec![base, index],
            Expr::Macro { args, .. } => args.iter().collect(),
            Expr::Binary { lhs, rhs, .. } => vec![lhs, rhs],
            Expr::Cast { expr, .. } => vec![expr],
            Expr::Let { init, .. } => init.iter().map(|b| &**b).collect(),
            Expr::Closure { body, .. } => body.iter().collect(),
            Expr::Block(es) | Expr::Opaque(es) => es.iter().collect(),
        }
    }

    /// Depth-first walk calling `f` on every node, self included.
    pub fn walk(&self, f: &mut impl FnMut(&Expr<'a>)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }
}

/// Binary operators recognized by the expression parser (joined into one
/// flat left-associative level — rules never need precedence).
const BINARY_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "<<=", ">>=", "..=", "..", "+", "-", "*", "/", "%", "^", "&", "|", "<", ">", "=",
];

/// Statement separators skipped between parses (match arms ride along).
const SEPARATORS: &[&str] = &[";", ",", "=>"];

struct P<'a, 't> {
    trees: &'t [Tree<'a>],
    pos: usize,
}

/// Parse a brace group's contents as a statement list.
pub fn parse_block<'a>(trees: &[Tree<'a>]) -> Vec<Expr<'a>> {
    let mut p = P { trees, pos: 0 };
    let mut out = Vec::new();
    while p.pos < p.trees.len() {
        if SEPARATORS.contains(&p.trees[p.pos].text()) {
            p.pos += 1;
            continue;
        }
        let before = p.pos;
        let e = p.parse_stmt();
        out.push(e);
        if p.pos == before {
            // Force progress: nothing consumed means an unmodeled token;
            // swallow it so the loop always terminates.
            p.pos += 1;
        }
    }
    out
}

impl<'a, 't> P<'a, 't> {
    fn peek(&self) -> Option<&'t Tree<'a>> {
        self.trees.get(self.pos)
    }

    fn peek_text(&self) -> &'a str {
        self.peek().map(Tree::text).unwrap_or("")
    }

    fn bump(&mut self) -> Option<&'t Tree<'a>> {
        let t = self.trees.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn parse_stmt(&mut self) -> Expr<'a> {
        match self.peek_text() {
            "let" => self.parse_let(),
            "if" | "while" => {
                self.bump();
                self.skip_if_let_binding();
                let cond = self.parse_expr();
                let mut parts = vec![cond];
                if let Some(Tree::Group { delim: b'{', trees, .. }) = self.peek() {
                    let trees: &[Tree<'a>] = trees;
                    self.bump();
                    parts.push(Expr::Block(parse_block(trees)));
                }
                // else-chain: `else {}` / `else if [let] … {}`, strictly
                // after an `else` keyword so a following statement is
                // never swallowed into this one.
                while self.peek_text() == "else" {
                    self.bump();
                    if self.peek_text() == "if" {
                        self.bump();
                        self.skip_if_let_binding();
                        parts.push(self.parse_expr());
                    }
                    if let Some(Tree::Group { delim: b'{', trees, .. }) = self.peek() {
                        let trees: &[Tree<'a>] = trees;
                        self.bump();
                        parts.push(Expr::Block(parse_block(trees)));
                    } else {
                        break;
                    }
                }
                Expr::Opaque(parts)
            }
            "for" => {
                self.bump();
                // Pattern up to `in`.
                while !matches!(self.peek_text(), "" | "in") {
                    if let Some(Tree::Group { delim: b'{', .. }) = self.peek() {
                        break;
                    }
                    self.bump();
                }
                if self.peek_text() == "in" {
                    self.bump();
                }
                let iter = self.parse_expr();
                let mut parts = vec![iter];
                if let Some(Tree::Group { delim: b'{', trees, .. }) = self.peek() {
                    self.bump();
                    parts.push(Expr::Block(parse_block(trees)));
                }
                Expr::Opaque(parts)
            }
            "loop" => {
                self.bump();
                match self.peek() {
                    Some(Tree::Group { delim: b'{', trees, .. }) => {
                        self.bump();
                        Expr::Block(parse_block(trees))
                    }
                    _ => Expr::Opaque(Vec::new()),
                }
            }
            "match" => {
                self.bump();
                let scrutinee = self.parse_expr();
                let mut parts = vec![scrutinee];
                if let Some(Tree::Group { delim: b'{', trees, .. }) = self.peek() {
                    self.bump();
                    parts.push(Expr::Block(parse_block(trees)));
                }
                Expr::Opaque(parts)
            }
            "return" | "break" => {
                self.bump();
                if matches!(self.peek_text(), "" | ";" | "," | "}") {
                    Expr::Opaque(Vec::new())
                } else {
                    let e = self.parse_expr();
                    Expr::Opaque(vec![e])
                }
            }
            "continue" => {
                self.bump();
                Expr::Opaque(Vec::new())
            }
            _ => self.parse_expr(),
        }
    }

    /// After an `if`/`while` keyword: skip an optional `let PAT =`
    /// binding so the scrutinee parses as the condition. The pattern may
    /// contain groups (`if let Data { .. } = body`); it always ends at a
    /// top-level `=` (or, on malformed input, at `;`/end).
    fn skip_if_let_binding(&mut self) {
        if self.peek_text() != "let" {
            return;
        }
        self.bump();
        while !matches!(self.peek_text(), "" | "=" | ";") {
            self.bump();
        }
        if self.peek_text() == "=" {
            self.bump();
        }
    }

    fn parse_let(&mut self) -> Expr<'a> {
        let line = self.peek().map(Tree::line).unwrap_or(0);
        self.bump(); // let
        if self.peek_text() == "mut" {
            self.bump();
        }
        // Simple-identifier pattern (`let x` / `let x: T`); anything else
        // (tuples, struct patterns) parses namelessly.
        let mut name = None;
        if let Some(l) = self.peek().and_then(Tree::leaf) {
            if l.kind == TokenKind::Ident && !matches!(l.text, "mut") {
                let next = self.trees.get(self.pos + 1).map(Tree::text).unwrap_or("");
                if matches!(next, ":" | "=" | ";") {
                    name = Some(l.text);
                    self.bump();
                }
            }
        }
        if name.is_none() {
            // Skip the pattern to `:`/`=`/`;` at this level.
            while !matches!(self.peek_text(), "" | ":" | "=" | ";") {
                self.bump();
            }
        }
        let mut ty = Vec::new();
        if self.peek_text() == ":" {
            self.bump();
            // Collect type identifiers to `=` or `;`.
            while !matches!(self.peek_text(), "" | "=" | ";") {
                if let Some(l) = self.peek().and_then(Tree::leaf) {
                    if l.kind == TokenKind::Ident {
                        ty.push(l.text);
                    }
                }
                self.bump();
            }
        }
        let mut init = None;
        if self.peek_text() == "=" {
            self.bump();
            init = Some(Box::new(self.parse_expr()));
        }
        // `let … else { }` divergence block.
        if self.peek_text() == "else" {
            self.bump();
            if let Some(Tree::Group { delim: b'{', .. }) = self.peek() {
                self.bump();
            }
        }
        Expr::Let { name, ty, init, line }
    }

    fn parse_expr(&mut self) -> Expr<'a> {
        let mut lhs = self.parse_unary();
        loop {
            match self.peek() {
                Some(Tree::Leaf(l)) if l.text == "as" && l.kind == TokenKind::Ident => {
                    let line = l.line;
                    self.bump();
                    let mut ty = Vec::new();
                    // A type path: idents joined by `::`, optional angles.
                    let mut depth = 0i32;
                    while let Some(t) = self.peek() {
                        match t.text() {
                            "<" => depth += 1,
                            ">" => {
                                depth -= 1;
                                if depth < 0 {
                                    break;
                                }
                            }
                            "<<" => depth += 2,
                            ">>" => depth -= 2,
                            "::" => {}
                            _ => {
                                let Some(l) = t.leaf() else { break };
                                if l.kind != TokenKind::Ident || BINARY_OPS.contains(&l.text) {
                                    break;
                                }
                                if depth == 0 && !ty.is_empty() {
                                    // Two depth-0 idents in a row end the
                                    // type (`x as u64 + y` → stop at `+`
                                    // handled above; `x as u64 .max(..)`
                                    // ends via the `.` branch below).
                                    break;
                                }
                                ty.push(l.text);
                            }
                        }
                        if t.text() == "." || matches!(t, Tree::Group { .. }) {
                            break;
                        }
                        self.bump();
                        if depth < 0 {
                            break;
                        }
                    }
                    lhs = Expr::Cast { expr: Box::new(lhs), ty, line };
                    // Postfix may continue after a cast (`x as f64`).sqrt().
                    lhs = self.parse_postfix_on(lhs);
                }
                Some(Tree::Leaf(l))
                    if l.kind == TokenKind::Punct && BINARY_OPS.contains(&l.text) =>
                {
                    // `{` after a binary op can't happen; `|` here is
                    // bitwise-or (closures only appear in unary position).
                    let op = l.text;
                    let line = l.line;
                    self.bump();
                    let rhs = self.parse_unary();
                    lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
                }
                _ => break,
            }
        }
        lhs
    }

    fn parse_unary(&mut self) -> Expr<'a> {
        let mut minus = false;
        loop {
            match self.peek() {
                Some(Tree::Leaf(l))
                    if l.kind == TokenKind::Punct && matches!(l.text, "-" | "!" | "*" | "&") =>
                {
                    if l.text == "-" {
                        minus = !minus;
                    }
                    self.bump();
                }
                Some(Tree::Leaf(l)) if matches!(l.text, "mut" | "move" | "ref" | "dyn") => {
                    self.bump();
                }
                Some(Tree::Leaf(l))
                    if l.kind == TokenKind::Punct && (l.text == "|" || l.text == "||") =>
                {
                    // Closure: params to the matching `|`, then the body.
                    let line = l.line;
                    self.bump();
                    if l.text == "|" {
                        while !matches!(self.peek_text(), "" | "|") {
                            self.bump();
                        }
                        self.bump(); // closing |
                    }
                    let body = self.parse_expr();
                    return Expr::Closure { body: vec![body], line };
                }
                _ => break,
            }
        }
        let e = self.parse_postfix();
        if minus {
            // Sign never changes what rules see except float-ness, which
            // `Float` already is; keep the inner expression.
        }
        e
    }

    fn parse_postfix(&mut self) -> Expr<'a> {
        let primary = self.parse_primary();
        self.parse_postfix_on(primary)
    }

    fn parse_postfix_on(&mut self, mut e: Expr<'a>) -> Expr<'a> {
        loop {
            match self.peek() {
                Some(Tree::Leaf(l)) if l.text == "." => {
                    self.bump();
                    match self.peek() {
                        Some(Tree::Leaf(n)) if n.kind == TokenKind::Ident => {
                            let name = n.text;
                            let line = n.line;
                            self.bump();
                            let turbofish = self.parse_turbofish();
                            match self.peek() {
                                Some(Tree::Group { delim: b'(', trees, .. }) => {
                                    self.bump();
                                    e = Expr::Method {
                                        recv: Box::new(e),
                                        name,
                                        turbofish,
                                        args: parse_args(trees),
                                        line,
                                    };
                                }
                                _ => {
                                    e = Expr::Field { base: Box::new(e), name, line };
                                }
                            }
                        }
                        Some(Tree::Leaf(n)) if n.kind == TokenKind::Int => {
                            let (name, line) = (n.text, n.line);
                            self.bump();
                            e = Expr::Field { base: Box::new(e), name, line };
                        }
                        _ => {
                            // `.` followed by nothing we model (`..` is an
                            // operator and never reaches here): swallow.
                            self.bump();
                        }
                    }
                }
                Some(Tree::Leaf(l)) if l.text == "?" => {
                    self.bump();
                }
                Some(Tree::Group { delim: b'(', trees, line }) => {
                    let args = parse_args(trees);
                    let line = *line;
                    self.bump();
                    e = Expr::Call { callee: Box::new(e), args, line };
                }
                Some(Tree::Group { delim: b'[', trees, line }) => {
                    let inner = parse_block(trees);
                    let index = match inner.len() {
                        1 => inner.into_iter().next().unwrap_or(Expr::Opaque(Vec::new())),
                        _ => Expr::Opaque(inner),
                    };
                    let line = *line;
                    self.bump();
                    e = Expr::Index { base: Box::new(e), index: Box::new(index), line };
                }
                _ => break,
            }
        }
        e
    }

    /// `::<T, U>` after a path segment or method name. Returns the type
    /// identifiers seen (empty when there is no turbofish).
    fn parse_turbofish(&mut self) -> Vec<&'a str> {
        if self.peek_text() != "::" {
            return Vec::new();
        }
        let next = self.trees.get(self.pos + 1).map(Tree::text).unwrap_or("");
        if next != "<" {
            return Vec::new();
        }
        self.bump(); // ::
        self.bump(); // <
        let mut depth = 1i32;
        let mut types = Vec::new();
        while depth > 0 {
            let Some(t) = self.bump() else { break };
            match t.text() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                _ => {
                    if let Some(l) = t.leaf() {
                        if l.kind == TokenKind::Ident {
                            types.push(l.text);
                        }
                    }
                }
            }
        }
        types
    }

    fn parse_primary(&mut self) -> Expr<'a> {
        let Some(t) = self.peek() else {
            return Expr::Opaque(Vec::new());
        };
        match t {
            Tree::Leaf(l) => match l.kind {
                TokenKind::Ident => {
                    let mut segs = vec![l.text];
                    let line = l.line;
                    self.bump();
                    // Path continuation: `::seg`, with optional turbofish
                    // between segments (`Vec::<u8>::new`).
                    loop {
                        if self.peek_text() != "::" {
                            break;
                        }
                        let after = self.trees.get(self.pos + 1);
                        match after {
                            Some(Tree::Leaf(n)) if n.kind == TokenKind::Ident => {
                                self.bump();
                                segs.push(n.text);
                                self.bump();
                            }
                            Some(Tree::Leaf(n)) if n.text == "<" => {
                                let _ = self.parse_turbofish();
                            }
                            _ => break,
                        }
                    }
                    // Macro invocation?
                    if self.peek_text() == "!" {
                        let next_is_group =
                            matches!(self.trees.get(self.pos + 1), Some(Tree::Group { .. }));
                        if next_is_group {
                            self.bump(); // !
                            if let Some(Tree::Group { trees, .. }) = self.peek() {
                                let args = parse_block(trees);
                                self.bump();
                                let name = segs.last().copied().unwrap_or("");
                                return Expr::Macro { name, args, line };
                            }
                        }
                    }
                    Expr::Path { segs, line }
                }
                TokenKind::Int => {
                    let e = Expr::Int { text: l.text, line: l.line };
                    self.bump();
                    e
                }
                TokenKind::Float => {
                    let e = Expr::Float { line: l.line };
                    self.bump();
                    e
                }
                TokenKind::Str | TokenKind::RawStr | TokenKind::Char | TokenKind::Lifetime => {
                    let e = Expr::OtherLit { line: l.line };
                    self.bump();
                    e
                }
                _ => {
                    // Unmodeled punctuation: swallow as an opaque atom.
                    self.bump();
                    Expr::Opaque(Vec::new())
                }
            },
            Tree::Group { delim, trees, .. } => {
                let delim = *delim;
                let inner = parse_block(trees);
                self.bump();
                match delim {
                    b'{' => Expr::Block(inner),
                    _ => Expr::Opaque(inner),
                }
            }
        }
    }
}

/// Parse a parenthesized argument list: top-level commas split arguments;
/// an argument that parses to several expressions is wrapped opaquely so
/// positions stay aligned with the source.
fn parse_args<'a>(trees: &[Tree<'a>]) -> Vec<Expr<'a>> {
    let mut out = Vec::new();
    let mut p = P { trees, pos: 0 };
    while p.pos < p.trees.len() {
        if p.peek_text() == "," {
            p.pos += 1;
            continue;
        }
        let mut parts = Vec::new();
        while p.pos < p.trees.len() && p.peek_text() != "," {
            let before = p.pos;
            if SEPARATORS.contains(&p.peek_text()) {
                p.pos += 1;
                continue;
            }
            parts.push(p.parse_stmt());
            if p.pos == before {
                p.pos += 1;
            }
        }
        match parts.len() {
            0 => {}
            1 => out.push(parts.into_iter().next().unwrap_or(Expr::Opaque(Vec::new()))),
            _ => out.push(Expr::Opaque(parts)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn parse_src(src: &str) -> ParsedFile<'_> {
        // Leak is fine in tests: tokens borrow src which outlives the call.
        parse(&tokenize(src))
    }

    #[test]
    fn finds_fns_with_owners() {
        let f = parse_src(
            "fn free() {}\n\
             impl Engine { fn pop(&mut self) {} }\n\
             impl Tracer for MemTracer { fn record(&self) {} }\n\
             trait T { fn with_default(&self) { helper(); } fn decl_only(&self); }",
        );
        let names: Vec<_> = f.fns.iter().map(|f| (f.owner, f.name)).collect();
        assert_eq!(
            names,
            vec![
                (None, "free"),
                (Some("Engine"), "pop"),
                (Some("MemTracer"), "record"),
                (Some("T"), "with_default"),
            ]
        );
    }

    #[test]
    fn impl_owner_handles_generics_and_paths() {
        let f = parse_src(
            "impl<E: std::fmt::Debug> Wheel<E> { fn cascade(&mut self) {} }\n\
             impl std::fmt::Display for Livelock { fn fmt(&self) {} }\n\
             impl<T> ops::Add for Complex { fn add(self) {} }",
        );
        let owners: Vec<_> = f.fns.iter().map(|f| f.owner).collect();
        assert_eq!(owners, vec![Some("Wheel"), Some("Livelock"), Some("Complex")]);
    }

    #[test]
    fn test_gating_marks_fns() {
        let f = parse_src(
            "#[test]\nfn t() {}\n\
             fn lib() {}\n\
             #[cfg(test)]\nmod tests { fn helper() {} }\n\
             #[cfg(not(test))]\nfn prod() {}",
        );
        let flags: Vec<_> = f.fns.iter().map(|f| (f.name, f.is_test)).collect();
        assert_eq!(
            flags,
            vec![("t", true), ("lib", false), ("helper", true), ("prod", false)]
        );
    }

    #[test]
    fn stream_consts_are_collected() {
        let f = parse_src(
            "pub mod streams {\n\
               pub const WIRED: u64 = 0x01;\n\
               pub const COMPUTED: u64 = BASE + 1;\n\
             }\n\
             mod other { pub const NOT_A_STREAM: u64 = 0x01; }",
        );
        assert_eq!(f.stream_consts.len(), 2);
        assert_eq!(f.stream_consts[0].name, "WIRED");
        assert_eq!(f.stream_consts[0].value, Some(1));
        assert_eq!(f.stream_consts[1].value, None); // computed, not literal
    }

    fn body_of<'a>(f: &'a ParsedFile<'a>, name: &str) -> &'a [Expr<'a>] {
        &f.fns.iter().find(|x| x.name == name).expect("fn").body
    }

    fn count_where(body: &[Expr<'_>], pred: &mut impl FnMut(&Expr<'_>) -> bool) -> usize {
        let mut n = 0;
        for e in body {
            e.walk(&mut |x| {
                if pred(x) {
                    n += 1;
                }
            });
        }
        n
    }

    #[test]
    fn method_chains_and_turbofish() {
        let f = parse_src("fn f(v: &[f64]) -> f64 { v.iter().copied().sum::<f64>() }");
        let body = body_of(&f, "f");
        let sums = count_where(body, &mut |e| {
            matches!(e, Expr::Method { name: "sum", turbofish, .. } if turbofish == &vec!["f64"])
        });
        assert_eq!(sums, 1);
    }

    #[test]
    fn calls_paths_and_macros() {
        let f = parse_src(
            "fn f() { let v = Vec::new(); let b = Box::new(1); let s = format!(\"x{}\", 1); g(v); }",
        );
        let body = body_of(&f, "f").to_vec();
        assert_eq!(
            count_where(&body, &mut |e| matches!(
                e,
                Expr::Call { callee, .. } if matches!(&**callee, Expr::Path { segs, .. } if segs == &vec!["Vec", "new"])
            )),
            1
        );
        assert_eq!(
            count_where(&body, &mut |e| matches!(e, Expr::Macro { name: "format", .. })),
            1
        );
        assert_eq!(
            count_where(&body, &mut |e| matches!(
                e,
                Expr::Call { callee, .. } if matches!(&**callee, Expr::Path { segs, .. } if segs == &vec!["g"])
            )),
            1
        );
    }

    #[test]
    fn index_with_arithmetic() {
        let f = parse_src("fn f(xs: &[u32], i: usize) -> u32 { xs[i - 1] + xs[i] }");
        let body = body_of(&f, "f").to_vec();
        let hits = count_where(&body, &mut |e| {
            matches!(e, Expr::Index { index, .. } if matches!(&**index, Expr::Binary { op: "-", .. }))
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn let_ascription_and_float_binding() {
        let f = parse_src("fn f() { let eps = 1e-9; let mw: f64 = x.iter().sum(); }");
        let body = body_of(&f, "f").to_vec();
        assert!(body.iter().any(|e| matches!(
            e,
            Expr::Let { name: Some("eps"), init: Some(i), .. } if matches!(&**i, Expr::Float { .. })
        )));
        assert!(body.iter().any(|e| matches!(
            e,
            Expr::Let { name: Some("mw"), ty, .. } if ty.contains(&"f64")
        )));
    }

    #[test]
    fn closures_are_transparent() {
        let f = parse_src("fn f(xs: &[u32]) { xs.iter().map(|x| Vec::new()).count(); }");
        let body = body_of(&f, "f").to_vec();
        let allocs = count_where(&body, &mut |e| {
            matches!(e, Expr::Call { callee, .. } if matches!(&**callee, Expr::Path { segs, .. } if segs.last() == Some(&"new")))
        });
        assert_eq!(allocs, 1);
    }

    #[test]
    fn control_flow_bodies_are_visited() {
        let f = parse_src(
            "fn f(x: u32) { if x > 1 { g(); } else { h(); } for i in 0..x { k(i); } match x { 1 => m(), _ => n() } }",
        );
        let body = body_of(&f, "f").to_vec();
        for callee in ["g", "h", "k", "m", "n"] {
            assert_eq!(
                count_where(&body, &mut |e| matches!(
                    e,
                    Expr::Call { callee: c, .. } if matches!(&**c, Expr::Path { segs, .. } if segs == &vec![callee])
                )),
                1,
                "{callee}"
            );
        }
    }

    #[test]
    fn struct_literals_degrade_but_children_survive() {
        let f = parse_src("fn f() -> Foo { Foo { a: Vec::new(), b: 1 } }");
        let body = body_of(&f, "f").to_vec();
        let allocs = count_where(&body, &mut |e| {
            matches!(e, Expr::Call { callee, .. } if matches!(&**callee, Expr::Path { segs, .. } if segs == &vec!["Vec", "new"]))
        });
        assert_eq!(allocs, 1);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn f( {", "impl }{", "fn", "fn x", "let = = =", "a.b.c.d(((", "x[[[", "|||",
            "fn f() { a as }", "fn f() { x.0.1.2 }", "match { =herp> }", "#[cfg(", "::<::<",
        ] {
            let _ = parse_src(src);
        }
    }
}
