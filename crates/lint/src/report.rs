//! Lint results and their rendering (human text and `--json`).
//!
//! JSON is hand-rolled string building, same convention as
//! `testkit::bench`'s summary writer — the workspace is hermetic, so no
//! serde. The schema is stable for CI consumption:
//!
//! ```json
//! {
//!   "tool": "domino-lint",
//!   "violations": [ {"rule", "file", "line", "message"} ],
//!   "waived":     [ {"rule", "file", "line", "message", "reason"} ],
//!   "unused_waivers": [ {"file", "line"} ],
//!   "summary": {"files": n, "violations": n, "waived": n}
//! }
//! ```

use crate::rules::RuleId;
use std::fmt::Write as _;

/// One finding attributed to a file, after waiver resolution.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The rule that fired (`W000` for an invalid waiver).
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Site-specific detail.
    pub message: String,
    /// `Some(reason)` when an inline waiver silenced this finding.
    pub waived: Option<String>,
}

/// A waiver that matched no finding (stale or misplaced).
#[derive(Clone, Debug)]
pub struct UnusedWaiver {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
}

/// Everything one lint run produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, waived or not, ordered by (file, line).
    pub violations: Vec<Violation>,
    /// Waivers that silenced nothing.
    pub unused_waivers: Vec<UnusedWaiver>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not silenced by a waiver (these fail CI).
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.waived.is_none())
    }

    /// Does this run gate CI red?
    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in self.unwaived() {
            let _ = writeln!(
                out,
                "{} {}:{} {}",
                v.rule.name(),
                v.file,
                v.line,
                v.message
            );
        }
        let waived = self.violations.len() - self.unwaived().count();
        for v in self.violations.iter().filter(|v| v.waived.is_some()) {
            let reason = v.waived.as_deref().unwrap_or("");
            let _ = writeln!(
                out,
                "waived {} {}:{} ({reason})",
                v.rule.name(),
                v.file,
                v.line
            );
        }
        for w in &self.unused_waivers {
            let _ = writeln!(out, "warning: unused waiver at {}:{}", w.file, w.line);
        }
        let _ = writeln!(
            out,
            "domino-lint: {} file(s), {} violation(s), {} waived",
            self.files_scanned,
            self.unwaived().count(),
            waived
        );
        out
    }

    /// Machine-readable rendering (`--json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"tool\": \"domino-lint\",\n  \"violations\": [\n");
        let unwaived: Vec<&Violation> = self.unwaived().collect();
        for (i, v) in unwaived.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}",
                v.rule.name(),
                escape(&v.file),
                v.line,
                escape(&v.message),
                if i + 1 == unwaived.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"waived\": [\n");
        let waived: Vec<&Violation> =
            self.violations.iter().filter(|v| v.waived.is_some()).collect();
        for (i, v) in waived.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"reason\": \"{}\"}}{}",
                v.rule.name(),
                escape(&v.file),
                v.line,
                escape(&v.message),
                escape(v.waived.as_deref().unwrap_or("")),
                if i + 1 == waived.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"unused_waivers\": [\n");
        for (i, w) in self.unused_waivers.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}}}{}",
                escape(&w.file),
                w.line,
                if i + 1 == self.unused_waivers.len() { "" } else { "," }
            );
        }
        let _ = write!(
            out,
            "  ],\n  \"summary\": {{\"files\": {}, \"violations\": {}, \"waived\": {}}}\n}}\n",
            self.files_scanned,
            unwaived.len(),
            waived.len()
        );
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![
                Violation {
                    rule: RuleId::D003,
                    file: "crates/x/src/lib.rs".into(),
                    line: 3,
                    message: "float `==` comparison".into(),
                    waived: None,
                },
                Violation {
                    rule: RuleId::D006,
                    file: "crates/y/src/lib.rs".into(),
                    line: 9,
                    message: "`println!` in library code".into(),
                    waived: Some("report printer by design".into()),
                },
            ],
            unused_waivers: vec![UnusedWaiver { file: "src/lib.rs".into(), line: 1 }],
            files_scanned: 2,
        }
    }

    #[test]
    fn text_report_lists_and_sums() {
        let text = sample().render_text();
        assert!(text.contains("D003 crates/x/src/lib.rs:3"), "{text}");
        assert!(text.contains("waived D006 crates/y/src/lib.rs:9 (report printer by design)"));
        assert!(text.contains("unused waiver at src/lib.rs:1"));
        assert!(text.contains("2 file(s), 1 violation(s), 1 waived"));
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let json = sample().render_json();
        assert!(json.contains("\"rule\": \"D003\""));
        assert!(json.contains("\"reason\": \"report printer by design\""));
        assert!(json.contains("\"summary\": {\"files\": 2, \"violations\": 1, \"waived\": 1}"));
        // Balanced braces/brackets as a cheap structural check.
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn clean_report() {
        let r = Report::default();
        assert!(r.is_clean());
        let r = sample();
        assert!(!r.is_clean());
    }
}
