//! The `domino-lint` binary: lint the workspace, print the report, exit
//! non-zero on any unwaived violation.
//!
//! ```text
//! cargo run -p domino-lint [-- --json] [--root <dir>] [--rules] [--deny-unused-waivers]
//! ```
//!
//! `--deny-unused-waivers` turns stale waivers (well-formed, but matching
//! no finding) from warnings into failures — CI runs with it so a waiver
//! outliving its violation is deleted instead of quietly rotting.
//!
//! Exit codes: `0` clean, `1` unwaived violations (or, with
//! `--deny-unused-waivers`, unused waivers), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_unused = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-unused-waivers" => deny_unused = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("domino-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for rule in [
                    domino_lint::rules::RuleId::D001,
                    domino_lint::rules::RuleId::D002,
                    domino_lint::rules::RuleId::D003,
                    domino_lint::rules::RuleId::D004,
                    domino_lint::rules::RuleId::D005,
                    domino_lint::rules::RuleId::D006,
                    domino_lint::rules::RuleId::D007,
                    domino_lint::rules::RuleId::D008,
                    domino_lint::rules::RuleId::D009,
                    domino_lint::rules::RuleId::D010,
                    domino_lint::rules::RuleId::W000,
                ] {
                    println!("{}  {}", rule.name(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: domino-lint [--json] [--root <dir>] [--rules] [--deny-unused-waivers]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("domino-lint: unknown flag {other}; try --help");
                return ExitCode::from(2);
            }
        }
    }

    let report = match domino_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("domino-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    let unused_fail = deny_unused && !report.unused_waivers.is_empty();
    if unused_fail && !json {
        eprintln!(
            "domino-lint: {} unused waiver(s) with --deny-unused-waivers",
            report.unused_waivers.len()
        );
    }
    if report.is_clean() && !unused_fail {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
