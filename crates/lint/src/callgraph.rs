//! Workspace symbol table and the conservative call graph behind D007.
//!
//! The hot-path allocation rule needs an answer to "can `Engine::pop`
//! reach this function?" without type information. The approximation is
//! deliberately **over**-inclusive — a missed edge would silently unpin
//! PR 6's allocation floor, an extra edge merely asks for a waiver:
//!
//! * Functions are indexed by *name*. A call `recv.emit(…)` edges to
//!   every workspace function named `emit`; a path call `Owner::emit(…)`
//!   narrows to functions defined in an `impl Owner` block when at least
//!   one exists. `Self::helper(…)` resolves `Self` to the calling
//!   function's own impl owner. When an *uppercase* owner matches no
//!   workspace impl, the callee is a foreign (std) type or an unresolved
//!   trait (`Default::default()`) and contributes no edge — its
//!   workspace-side implementations are reachable through their
//!   owner-qualified or method-call spellings, and without this cut every
//!   `Self { ..Default::default() }` would edge into every constructor
//!   in the workspace, drowning real hot-path hits in init-time noise.
//!   A lowercase owner (`wired::deliver(…)`) is a module path, not a
//!   type; it keeps the name-only match.
//! * Call facts are collected from the whole body — closures included,
//!   so an allocation inside `.map(|x| …)` is attributed to the function
//!   that owns the closure (it runs on the same path).
//! * `#[cfg(test)]`/`#[test]` functions are outside the graph: they can
//!   neither be reached from a simulation root nor supply edges, which
//!   keeps test helpers named `push`/`emit` from polluting reachability.
//! * Driver/measurement crates ([`EXCLUDED_CRATES`]) contribute neither
//!   nodes nor edges: nothing the engine dispatches lives there, and
//!   their intentionally alloc-heavy code (report rendering, bench
//!   harnesses) would otherwise shadow real hot-path hits through
//!   name collisions.
//!
//! Reachability is one BFS from the roots ([`is_root`]); parent links
//! let every finding print its witness chain, so a D007 report reads
//! `Engine::pop → World::dispatch_batch → send_data` rather than a bare
//! "reachable".

use crate::parser::{Expr, ParsedFile};
use crate::rules::{FileCtx, Finding, RuleId};
use std::collections::BTreeMap;

/// Crates that contribute nodes and edges to the call graph. Everything
/// simulation-side is here; `testkit`/`bench`/`lint`/`runner`/`campaign`
/// are excluded (driver and measurement code, fenced from sim crates by
/// D001 already).
const EXCLUDED_CRATES: &[&str] = &["testkit", "bench", "lint", "runner", "campaign"];

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallRef {
    /// Owner hint for path calls (`Engine::pop` → `Some("Engine")`);
    /// `None` for method and bare calls.
    pub hint: Option<String>,
    /// Callee name (last path segment or method name).
    pub name: String,
}

/// A banned-allocation site inside a function body.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Human-readable construct (`Vec::new()`, `.collect()`, `format!`).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// The semantic facts one function contributes to cross-file analysis.
#[derive(Clone, Debug)]
pub struct FnSem {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type, if any.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Test-gated (`#[test]` / inside `#[cfg(test)]`).
    pub is_test: bool,
    /// Every call site in the body (closures included).
    pub calls: Vec<CallRef>,
    /// Every banned-allocation site in the body.
    pub allocs: Vec<AllocSite>,
}

/// A named RNG-stream constant (`mod streams { const … }`).
#[derive(Clone, Debug)]
pub struct StreamDef {
    /// Constant name.
    pub name: String,
    /// Literal value (only plain integer literals are comparable).
    pub value: Option<u64>,
    /// 1-based line of the constant name.
    pub line: u32,
}

/// Cross-file facts extracted from one parsed file.
#[derive(Clone, Debug, Default)]
pub struct FileSem {
    /// Function facts, in source order.
    pub fns: Vec<FnSem>,
    /// Stream-registry constants defined in this file.
    pub streams: Vec<StreamDef>,
}

/// Allocation-returning method names D007 bans on the hot path.
const ALLOC_METHODS: &[&str] = &["to_vec", "collect"];
/// Allocation macros D007 bans on the hot path.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Extract the cross-file facts from one parsed file.
pub fn extract(parsed: &ParsedFile<'_>) -> FileSem {
    let mut sem = FileSem {
        fns: Vec::with_capacity(parsed.fns.len()),
        streams: parsed
            .stream_consts
            .iter()
            .map(|c| StreamDef { name: c.name.to_string(), value: c.value, line: c.line })
            .collect(),
    };
    for f in &parsed.fns {
        let mut calls = Vec::new();
        let mut allocs = Vec::new();
        for e in &f.body {
            e.walk(&mut |x| collect_facts(x, &mut calls, &mut allocs));
        }
        // `Self::helper()` means this impl's owner type.
        if let Some(owner) = f.owner {
            for c in &mut calls {
                if c.hint.as_deref() == Some("Self") {
                    c.hint = Some(owner.to_string());
                }
            }
        }
        sem.fns.push(FnSem {
            name: f.name.to_string(),
            owner: f.owner.map(str::to_string),
            line: f.line,
            is_test: f.is_test,
            calls,
            allocs,
        });
    }
    sem
}

/// Record call edges and banned-allocation sites for one expression node.
fn collect_facts(e: &Expr<'_>, calls: &mut Vec<CallRef>, allocs: &mut Vec<AllocSite>) {
    match e {
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = &**callee {
                let name = segs.last().copied().unwrap_or("");
                if name.is_empty() {
                    return;
                }
                let hint = segs.len().checked_sub(2).map(|i| segs[i].to_string());
                match (hint.as_deref(), name) {
                    (Some("Vec"), "new") | (Some("Box"), "new") => allocs.push(AllocSite {
                        what: format!("{}::new()", hint.as_deref().unwrap_or("")),
                        line: *line,
                    }),
                    (_, "with_capacity" | "with_capacity_and_hasher") => {
                        allocs.push(AllocSite { what: format!("{}(…)", segs.join("::")), line: *line });
                    }
                    _ => calls.push(CallRef { hint, name: name.to_string() }),
                }
            }
            // Calls through non-path callees (`(f)(x)`, field closures)
            // stay unresolved: no symbol to match.
        }
        Expr::Method { name, line, .. } => {
            if ALLOC_METHODS.contains(name) {
                allocs.push(AllocSite { what: format!(".{name}()"), line: *line });
            } else if *name == "with_capacity" {
                allocs.push(AllocSite { what: format!(".{name}(…)"), line: *line });
            } else {
                calls.push(CallRef { hint: None, name: name.to_string() });
            }
        }
        Expr::Macro { name, line, .. } if ALLOC_MACROS.contains(name) => {
            allocs.push(AllocSite { what: format!("{name}!"), line: *line });
        }
        _ => {}
    }
}

/// Is this function a D007 root (an event-dispatch entry point)?
fn is_root(f: &FnSem) -> bool {
    matches!(
        (f.owner.as_deref(), f.name.as_str()),
        (Some("Engine"), "pop") | (Some("Medium"), "begin") | (_, "dispatch_batch")
    )
}

/// A graph node: (file index, fn index within that file's `FileSem`).
type NodeId = (usize, usize);

/// Run D007 over the workspace: BFS the call graph from the dispatch
/// roots, then report every banned-allocation site inside a reachable
/// non-test function. Returns `(file_idx, finding)` pairs.
pub fn d007_hot_path_allocs(files: &[(FileCtx, FileSem)]) -> Vec<(usize, Finding)> {
    // Node universe: non-test fns of in-scope crates.
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, (ctx, sem)) in files.iter().enumerate() {
        if EXCLUDED_CRATES.contains(&ctx.crate_name.as_str()) || ctx.is_test_file {
            continue;
        }
        for (gi, f) in sem.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push(nodes.len());
            nodes.push((fi, gi));
        }
    }
    let get = |n: usize| -> &FnSem {
        let (fi, gi) = nodes[n];
        &files[fi].1.fns[gi]
    };

    // BFS with parent links for witness chains.
    let mut reached: Vec<bool> = vec![false; nodes.len()];
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = (0..nodes.len())
        .filter(|&n| is_root(get(n)))
        .inspect(|&n| reached[n] = true)
        .collect();
    while let Some(n) = queue.pop_front() {
        for call in &get(n).calls {
            let Some(cands) = by_name.get(call.name.as_str()) else { continue };
            // A path call `Owner::name` narrows to matching impl owners.
            // An uppercase owner with no workspace impl is foreign (std
            // type or unresolved trait): no edge. A lowercase owner is a
            // module path: name-only match, like a method call.
            let narrowed: Vec<usize> = match &call.hint {
                Some(h) => {
                    let m: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| get(c).owner.as_deref() == Some(h.as_str()))
                        .collect();
                    if !m.is_empty() {
                        m
                    } else if h.chars().next().is_some_and(char::is_uppercase) {
                        Vec::new()
                    } else {
                        cands.clone()
                    }
                }
                None => cands.clone(),
            };
            for c in narrowed {
                if !reached[c] {
                    reached[c] = true;
                    parent[c] = Some(n);
                    queue.push_back(c);
                }
            }
        }
    }

    // Findings: banned allocations inside reachable fns.
    let label = |n: usize| -> String {
        let f = get(n);
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    };
    let mut out = Vec::new();
    for n in 0..nodes.len() {
        if !reached[n] || get(n).allocs.is_empty() {
            continue;
        }
        // Witness chain root → … → n, capped for readability.
        let mut chain = vec![label(n)];
        let mut cur = n;
        while let Some(p) = parent[cur] {
            chain.push(label(p));
            cur = p;
            if chain.len() >= 6 {
                chain.push("…".to_string());
                break;
            }
        }
        chain.reverse();
        let via = chain.join(" → ");
        let (fi, _) = nodes[n];
        for a in &get(n).allocs {
            out.push((
                fi,
                Finding {
                    rule: RuleId::D007,
                    line: a.line,
                    message: format!(
                        "`{}` allocates on the hot path ({via}); reuse a pooled/recycled buffer",
                        a.what
                    ),
                },
            ));
        }
    }
    out
}

/// Cross-file half of D008: two named stream constants sharing one id.
/// The later definition (by path order, then line) gets the finding so a
/// newly added duplicate is the one flagged.
pub fn d008_duplicate_streams(
    files: &[(FileCtx, FileSem)],
    paths: &[String],
) -> Vec<(usize, Finding)> {
    // value → (file_idx, name, line), in (path, line) order.
    let mut by_value: BTreeMap<u64, Vec<(usize, &str, u32)>> = BTreeMap::new();
    let mut defs: Vec<(usize, &StreamDef)> = Vec::new();
    for (fi, (_, sem)) in files.iter().enumerate() {
        for d in &sem.streams {
            defs.push((fi, d));
        }
    }
    defs.sort_by(|a, b| (&paths[a.0], a.1.line).cmp(&(&paths[b.0], b.1.line)));
    for (fi, d) in defs {
        if let Some(v) = d.value {
            by_value.entry(v).or_default().push((fi, d.name.as_str(), d.line));
        }
    }
    let mut out = Vec::new();
    for (value, sites) in by_value {
        let Some((first_fi, first_name, first_line)) = sites.first().copied() else { continue };
        for &(fi, name, line) in sites.iter().skip(1) {
            out.push((
                fi,
                Finding {
                    rule: RuleId::D008,
                    line,
                    message: format!(
                        "stream id {value:#04x} (`{name}`) duplicates `{first_name}` \
                         ({}:{first_line}); pick an unused id",
                        paths[first_fi]
                    ),
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::tokenizer::tokenize;

    fn file(path: &str, src: &str) -> (FileCtx, FileSem) {
        (FileCtx::from_path(path), extract(&parse(&tokenize(src))))
    }

    #[test]
    fn reaches_through_method_calls_and_closures() {
        let files = vec![
            file(
                "crates/sim/src/engine.rs",
                "impl Engine { fn pop(&mut self) { self.helper(); } \
                              fn helper(&self) { deep(); } }",
            ),
            file(
                "crates/mac/src/x.rs",
                "fn deep() { xs.iter().map(|x| Vec::new()).count(); }\n\
                 fn unreachable_alloc() { let v = Vec::new(); }",
            ),
        ];
        let hits = d007_hot_path_allocs(&files);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1.rule, RuleId::D007);
        assert!(hits[0].1.message.contains("Engine::pop"), "{}", hits[0].1.message);
        assert!(hits[0].1.message.contains("deep"), "{}", hits[0].1.message);
    }

    #[test]
    fn owner_hint_narrows_path_calls() {
        // `Other::begin` must not pull `Medium::begin`'s callees into the
        // graph when an `Other` impl exists.
        let files = vec![file(
            "crates/medium/src/m.rs",
            "impl Medium { fn begin(&mut self) { self.only_from_medium(); } \
                           fn only_from_medium(&self) { let v = Vec::new(); } }\n\
             impl Other { fn begin(&self) {} }",
        )];
        let hits = d007_hot_path_allocs(&files);
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn self_calls_resolve_to_the_impl_owner() {
        let files = vec![file(
            "crates/sim/src/engine.rs",
            "impl Engine { fn pop(&mut self) { Self::advance(self); } \
                           fn advance(&mut self) { let v = Vec::new(); } }\n\
             impl Other { fn advance(&mut self) { let v = Vec::new(); } }",
        )];
        let hits = d007_hot_path_allocs(&files);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].1.message.contains("Engine::advance"), "{}", hits[0].1.message);
    }

    #[test]
    fn foreign_type_calls_contribute_no_edge() {
        // `Default::default()` must not edge into every workspace
        // constructor; `helpers::prep` (module path) must still match.
        let files = vec![
            file(
                "crates/sim/src/engine.rs",
                "impl Engine { fn pop(&mut self) { let x = Default::default(); helpers::prep(); } }",
            ),
            file(
                "crates/mac/src/x.rs",
                "impl World { fn default(&self) { let v = Vec::new(); } }\n\
                 pub fn prep() { let s = format!(\"x\"); }",
            ),
        ];
        let hits = d007_hot_path_allocs(&files);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].1.message.contains("format!"), "{}", hits[0].1.message);
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let files = vec![file(
            "crates/sim/src/engine.rs",
            "impl Engine { fn pop(&mut self) { helper(); } }\n\
             #[cfg(test)] mod tests { fn helper() { let v = Vec::new(); } }",
        )];
        assert!(d007_hot_path_allocs(&files).is_empty());
    }

    #[test]
    fn excluded_crates_contribute_nothing() {
        let files = vec![
            file("crates/sim/src/engine.rs", "impl Engine { fn pop(&mut self) { render(); } }"),
            file("crates/runner/src/report.rs", "fn render() { let s = format!(\"x\"); }"),
        ];
        assert!(d007_hot_path_allocs(&files).is_empty());
    }

    #[test]
    fn duplicate_stream_ids_flag_the_later_definition() {
        let files = vec![
            file("crates/sim/src/rng.rs", "pub mod streams { pub const A: u64 = 0x01; pub const B: u64 = 0x02; }"),
            file("crates/traffic/src/gen.rs", "pub mod streams { pub const C: u64 = 0x02; }"),
        ];
        let paths = vec!["crates/sim/src/rng.rs".to_string(), "crates/traffic/src/gen.rs".to_string()];
        let hits = d008_duplicate_streams(&files, &paths);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].0, 1);
        assert!(hits[0].1.message.contains("`B`"), "{}", hits[0].1.message);
    }
}
