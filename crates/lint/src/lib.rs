//! # domino-lint
//!
//! Determinism & correctness lints for the DOMINO workspace — a
//! zero-dependency static-analysis pass that makes the reproduction's
//! bit-exactness *enforced* rather than conventional.
//!
//! The headline claim of the paper (relative scheduling reproduces a strict
//! schedule without clock sync) is verified by exact-value pins over seeded
//! runs (`tests/golden.rs`). Those pins are only meaningful while nothing
//! nondeterministic can reach a scheduling decision: no wall-clock reads,
//! no hash-order iteration, no ambient randomness — and, since PR 6 bought
//! its allocation floor and pinned float walk order, no stray heap
//! allocation or float reassociation on the hot path either.
//!
//! Two analysis layers share one tokenizer ([`tokenizer`]):
//!
//! * **token-level** rules D001–D006 ([`rules::check_file`]) over the flat
//!   stream of each file;
//! * **semantic** rules D007–D010 over a parse tree ([`parser`]): the
//!   file-local halves in [`rules::check_semantic`], and the cross-file
//!   halves — call-graph reachability for the hot-path allocation rule and
//!   duplicate RNG-stream detection — in [`callgraph`].
//!
//! Both layers honor inline waivers that must carry a written reason
//! ([`waiver`]), and report as text or JSON with a CI-gateable exit code
//! ([`report`]). Run `cargo run -p domino-lint` (add `--json` for the
//! machine format, `--deny-unused-waivers` to make stale waivers fatal);
//! `scripts/ci.sh` gates on it *before* the test suite and byte-diffs the
//! JSON against the committed baseline `results/lint_findings.json`. See
//! DESIGN.md §"Determinism rules" and §"Semantic lint architecture".

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod parser;
pub mod report;
pub mod rules;
pub mod tokenizer;
pub mod waiver;

use report::{Report, UnusedWaiver, Violation};
use rules::{FileCtx, Finding, RuleId};
use std::path::{Path, PathBuf};

/// Lint a set of files as one workspace: token rules and file-local
/// semantic rules per file, then the cross-file rules (D007 hot-path
/// allocation over the call graph, D008 duplicate stream ids), then
/// waiver resolution. This is the core pipeline; [`lint_source`] and
/// [`lint_workspace`] are wrappers over it.
pub fn lint_sources(files: &[(String, String)]) -> Report {
    // Per-file pass: tokens live only inside this loop; everything the
    // cross-file rules need is extracted into owned `FileSem` facts.
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    let mut sems: Vec<callgraph::FileSem> = Vec::with_capacity(files.len());
    let mut local: Vec<Vec<Finding>> = Vec::with_capacity(files.len());
    let mut waivers: Vec<Vec<waiver::Waiver>> = Vec::with_capacity(files.len());
    for (path, source) in files {
        let tokens = tokenizer::tokenize(source);
        let ctx = FileCtx::from_path(path);
        let parsed = parser::parse(&tokens);
        let mut findings = rules::check_file(&ctx, &tokens);
        findings.extend(rules::check_semantic(&ctx, &parsed));
        findings.sort_by_key(|f| (f.line, f.rule));
        // The token-level D003 and its let-bound extension can coincide.
        findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
        sems.push(callgraph::extract(&parsed));
        local.push(findings);
        waivers.push(waiver::collect(&tokens));
        ctxs.push(ctx);
    }

    // Cross-file pass.
    let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
    let graph_input: Vec<(FileCtx, callgraph::FileSem)> =
        ctxs.iter().cloned().zip(sems).collect();
    for (fi, finding) in callgraph::d007_hot_path_allocs(&graph_input)
        .into_iter()
        .chain(callgraph::d008_duplicate_streams(&graph_input, &paths))
    {
        local[fi].push(finding);
    }

    // Waiver resolution, per file.
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for (fi, path) in paths.iter().enumerate() {
        let findings = std::mem::take(&mut local[fi]);
        let file_waivers = &mut waivers[fi];
        let mut out = Vec::with_capacity(findings.len());
        for f in findings {
            let w = file_waivers
                .iter_mut()
                .find(|w| waiver::covers(w, f.rule, f.line));
            let waived = w.map(|w| {
                w.used = true;
                w.reason.clone()
            });
            out.push(Violation {
                rule: f.rule,
                file: path.clone(),
                line: f.line,
                message: f.message,
                waived,
            });
        }
        // Waiver hygiene: a waiver without a reason (or with an unparsable
        // rule list) is itself a violation; a well-formed waiver that
        // matched nothing is surfaced as unused.
        for w in file_waivers.iter() {
            if w.reason.is_empty() || w.rules.is_empty() {
                out.push(Violation {
                    rule: RuleId::W000,
                    file: path.clone(),
                    line: w.line,
                    message: if w.rules.is_empty() {
                        "waiver with unknown rule id; expected D001..D010".to_string()
                    } else {
                        "waiver without a reason; write `// lint: allow(Dxxx) <why>`".to_string()
                    },
                    waived: None,
                });
            } else if !w.used {
                report.unused_waivers.push(UnusedWaiver { file: path.clone(), line: w.line });
            }
        }
        out.sort_by_key(|v| (v.line, v.rule));
        report.violations.extend(out);
    }
    report.violations.sort_by_key(|v| (v.file.clone(), v.line, v.rule));
    report
        .unused_waivers
        .sort_by_key(|w| (w.file.clone(), w.line));
    report
}

/// Lint one file's source text in isolation. `path` is workspace-relative
/// and decides which rules apply ([`FileCtx::from_path`]). Single-file
/// analysis can't see the call graph, so D007 needs the file to contain
/// both a root and the allocation; the fixture tests use exactly that.
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    lint_sources(&[(path.to_string(), source.to_string())]).violations
}

/// Recursively collect the workspace's `.rs` files under `root`, skipping
/// build output and VCS internals. Returned paths are `root`-relative with
/// `/` separators, sorted for deterministic report order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if matches!(name.as_ref(), "target" | ".git" | ".claude" | "results") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every workspace file under `root`; the one-call entry the binary
/// and the self-tests share.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // Non-UTF-8 bytes cannot carry Rust tokens; lossy conversion keeps
        // the lint total (every file is scanned, none can opt out by
        // encoding).
        let bytes = std::fs::read(path)?;
        inputs.push((rel, String::from_utf8_lossy(&bytes).into_owned()));
    }
    Ok(lint_sources(&inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_silences_only_its_rule_and_site() {
        let src = "\
fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {
    // lint: allow(D002) snapshot copy, order irrelevant: summed
    let s: u32 = m.values().sum();
    s
}
fn g(m: &std::collections::HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
";
        let v = lint_source("crates/sim/src/x.rs", src);
        let unwaived: Vec<_> = v.iter().filter(|v| v.waived.is_none()).collect();
        assert_eq!(unwaived.len(), 1, "{v:?}");
        assert_eq!(unwaived[0].line, 7);
        assert!(v.iter().any(|v| v.waived.is_some() && v.line == 3));
    }

    #[test]
    fn reasonless_waiver_is_a_violation_and_silences_nothing() {
        let src = "// lint: allow(D006)\nfn f() { println!(\"x\"); }\n";
        let v = lint_source("crates/stats/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == RuleId::W000));
        assert!(v.iter().any(|v| v.rule == RuleId::D006 && v.waived.is_none()));
    }

    #[test]
    fn cross_file_d007_reaches_across_files() {
        let files = vec![
            (
                "crates/sim/src/engine.rs".to_string(),
                "impl Engine { pub fn pop(&mut self) { helper(self); } }".to_string(),
            ),
            (
                "crates/mac/src/x.rs".to_string(),
                "pub fn helper(e: &mut Engine) { let v = Vec::new(); }".to_string(),
            ),
        ];
        let r = lint_sources(&files);
        let d007: Vec<_> = r.violations.iter().filter(|v| v.rule == RuleId::D007).collect();
        assert_eq!(d007.len(), 1, "{:?}", r.violations);
        assert_eq!(d007[0].file, "crates/mac/src/x.rs");
    }

    #[test]
    fn cross_file_d008_duplicate_streams() {
        let files = vec![
            (
                "crates/sim/src/rng.rs".to_string(),
                "pub mod streams { pub const A: u64 = 0x07; }".to_string(),
            ),
            (
                "crates/traffic/src/gen.rs".to_string(),
                "pub mod streams { pub const B: u64 = 0x07; }".to_string(),
            ),
        ];
        let r = lint_sources(&files);
        let d008: Vec<_> = r.violations.iter().filter(|v| v.rule == RuleId::D008).collect();
        assert_eq!(d008.len(), 1, "{:?}", r.violations);
        assert_eq!(d008[0].file, "crates/traffic/src/gen.rs");
    }

    #[test]
    fn unused_waiver_is_reported_once() {
        let src = "// lint: allow(D005) nothing here actually panics\nfn f() { let x = 1; }\n";
        let r = lint_sources(&[("crates/sim/src/x.rs".to_string(), src.to_string())]);
        assert_eq!(r.unused_waivers.len(), 1, "{:?}", r.unused_waivers);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
