//! # domino-lint
//!
//! Determinism & correctness lints for the DOMINO workspace — a
//! zero-dependency static-analysis pass that makes the reproduction's
//! bit-exactness *enforced* rather than conventional.
//!
//! The headline claim of the paper (relative scheduling reproduces a strict
//! schedule without clock sync) is verified here by exact-value pins over
//! seeded runs (`tests/golden.rs`). Those pins are only meaningful while
//! nothing nondeterministic can reach a scheduling decision: no wall-clock
//! reads, no hash-order iteration, no ambient randomness. `domino-lint`
//! walks every `.rs` file in the workspace with a real token-level lexer
//! ([`tokenizer`]) and enforces rules D001–D006 ([`rules`]), honoring
//! inline waivers that must carry a written reason ([`waiver`]), and
//! reports as text or JSON with a CI-gateable exit code ([`report`]).
//!
//! Run it with `cargo run -p domino-lint` (add `--json` for the machine
//! format); `scripts/ci.sh` gates on it. See DESIGN.md §"Determinism
//! rules" for the paper-level rationale of each rule.

#![forbid(unsafe_code)]

pub mod report;
pub mod rules;
pub mod tokenizer;
pub mod waiver;

use report::{Report, UnusedWaiver, Violation};
use rules::{FileCtx, RuleId};
use std::path::{Path, PathBuf};

/// Lint one file's source text. `path` is workspace-relative and decides
/// which rules apply ([`FileCtx::from_path`]).
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let tokens = tokenizer::tokenize(source);
    let ctx = FileCtx::from_path(path);
    let findings = rules::check_file(&ctx, &tokens);
    let mut waivers = waiver::collect(&tokens);

    let mut out = Vec::new();
    for f in findings {
        let w = waivers
            .iter_mut()
            .find(|w| waiver::covers(w, f.rule, f.line));
        let waived = w.map(|w| {
            w.used = true;
            w.reason.clone()
        });
        out.push(Violation {
            rule: f.rule,
            file: path.to_string(),
            line: f.line,
            message: f.message,
            waived,
        });
    }
    // Waiver hygiene: a waiver without a reason (or with an unparsable rule
    // list) is itself a violation; a well-formed waiver that matched
    // nothing is surfaced by `lint_files` as unused.
    for w in &waivers {
        if w.reason.is_empty() || w.rules.is_empty() {
            out.push(Violation {
                rule: RuleId::W000,
                file: path.to_string(),
                line: w.line,
                message: if w.rules.is_empty() {
                    "waiver with unknown rule id; expected D001..D006".to_string()
                } else {
                    "waiver without a reason; write `// lint: allow(Dxxx) <why>`".to_string()
                },
                waived: None,
            });
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Unused, well-formed waivers of one file (for the stale-waiver warning).
fn unused_waivers(path: &str, source: &str) -> Vec<UnusedWaiver> {
    let tokens = tokenizer::tokenize(source);
    let ctx = FileCtx::from_path(path);
    let findings = rules::check_file(&ctx, &tokens);
    let mut waivers = waiver::collect(&tokens);
    for f in &findings {
        if let Some(w) = waivers.iter_mut().find(|w| waiver::covers(w, f.rule, f.line)) {
            w.used = true;
        }
    }
    waivers
        .into_iter()
        .filter(|w| !w.used && !w.reason.is_empty() && !w.rules.is_empty())
        .map(|w| UnusedWaiver { file: path.to_string(), line: w.line })
        .collect()
}

/// Recursively collect the workspace's `.rs` files under `root`, skipping
/// build output and VCS internals. Returned paths are `root`-relative with
/// `/` separators, sorted for deterministic report order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if matches!(name.as_ref(), "target" | ".git" | ".claude" | "results") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every workspace file under `root`; the one-call entry the binary
/// and the self-tests share.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // Non-UTF-8 bytes cannot carry Rust tokens; lossy conversion keeps
        // the lint total (every file is scanned, none can opt out by
        // encoding).
        let bytes = std::fs::read(path)?;
        let source = String::from_utf8_lossy(&bytes);
        report.violations.extend(lint_source(&rel, &source));
        report.unused_waivers.extend(unused_waivers(&rel, &source));
    }
    report.violations.sort_by_key(|v| (v.file.clone(), v.line, v.rule));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_silences_only_its_rule_and_site() {
        let src = "\
fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {
    // lint: allow(D002) snapshot copy, order irrelevant: summed
    let s: u32 = m.values().sum();
    s
}
fn g(m: &std::collections::HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
";
        let v = lint_source("crates/sim/src/x.rs", src);
        let unwaived: Vec<_> = v.iter().filter(|v| v.waived.is_none()).collect();
        assert_eq!(unwaived.len(), 1, "{v:?}");
        assert_eq!(unwaived[0].line, 7);
        assert!(v.iter().any(|v| v.waived.is_some() && v.line == 3));
    }

    #[test]
    fn reasonless_waiver_is_a_violation_and_silences_nothing() {
        let src = "// lint: allow(D006)\nfn f() { println!(\"x\"); }\n";
        let v = lint_source("crates/stats/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == RuleId::W000));
        assert!(v.iter().any(|v| v.rule == RuleId::D006 && v.waived.is_none()));
    }
}
