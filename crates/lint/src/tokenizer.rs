//! A panic-free, token-level Rust lexer.
//!
//! `domino-lint` does not need a full parse: every rule in [`crate::rules`]
//! is expressible over a flat token stream, provided that stream is *honest*
//! about the hard parts of Rust's lexical grammar. The failure mode this
//! module exists to prevent is the classic grep-lint false positive:
//! flagging `unwrap()` inside a raw string, a nested block comment, or a
//! doc-comment example. So the lexer handles, precisely:
//!
//! * strings with escapes, byte strings, C strings;
//! * raw strings / raw byte strings with arbitrary `#` guards
//!   (`r#"…"#`, `br##"…"##`), and raw identifiers (`r#type`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped and
//!   multi-byte char literals;
//! * nested block comments (`/* /* */ */`) and line comments;
//! * float vs. integer literals, including exponents, suffixes, and the
//!   tuple-field case (`x.0` is *not* a float, `1.0` is);
//! * multi-character operators, so `==`, `::` and friends arrive as single
//!   tokens.
//!
//! Comments are kept in the stream (waivers live in them); rules that only
//! care about code iterate a comment-free view.
//!
//! The lexer must accept *arbitrary* input without panicking — it runs on
//! every `.rs` file in the workspace, and a lint tool that crashes on a
//! half-saved file is worse than useless. Unterminated literals simply end
//! at end-of-file; bytes that fit nothing become one-character `Punct`
//! tokens. This is pinned by a property test over random byte strings.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers arrive *without* `r#`).
    Ident,
    /// A lifetime such as `'a` (the quote is included in the text).
    Lifetime,
    /// Integer literal, including suffixed forms (`7u32`, `0xFF`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String, byte-string or C-string literal, escapes unresolved.
    Str,
    /// Raw (byte) string literal, guards included.
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// `/* … */` comment, nesting respected, delimiters included.
    BlockComment,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
}

/// One lexed token: kind, verbatim text, and 1-based source line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source slice (raw identifiers are stripped of `r#`).
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Cursor over the source's characters; all movement is by whole `char`s so
/// slicing stays on UTF-8 boundaries.
struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src, chars: src.char_indices().collect(), pos: 0, line: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    /// Byte offset of the current character (or end of input).
    fn byte_pos(&self) -> usize {
        self.chars.get(self.pos).map_or(self.src.len(), |&(b, _)| b)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Advance while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens. Never panics; unterminated constructs end at EOF.
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor::new(src);
    let mut out: Vec<Token<'_>> = Vec::new();
    while let Some(c) = cur.peek() {
        let start_byte = cur.byte_pos();
        let start_line = cur.line;
        let kind = lex_one(&mut cur, c, out.last());
        let end_byte = cur.byte_pos();
        let Some(kind) = kind else { continue };
        let mut text = &src[start_byte..end_byte];
        if kind == TokenKind::Ident {
            text = text.strip_prefix("r#").unwrap_or(text);
        }
        out.push(Token { kind, text, line: start_line });
    }
    out
}

/// Lex one raw element starting at `c`; `None` for whitespace.
fn lex_one<'a>(cur: &mut Cursor<'_>, c: char, prev: Option<&Token<'a>>) -> Option<TokenKind> {
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return None;
    }

    // Comments.
    if c == '/' && cur.peek_at(1) == Some('/') {
        cur.eat_while(|c| c != '\n');
        return Some(TokenKind::LineComment);
    }
    if c == '/' && cur.peek_at(1) == Some('*') {
        cur.bump();
        cur.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (cur.peek(), cur.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    cur.bump();
                }
                (None, _) => break,
            }
        }
        return Some(TokenKind::BlockComment);
    }

    // Literal prefixes: r, b, c and their combinations, raw identifiers.
    if matches!(c, 'r' | 'b' | 'c') {
        if let Some(kind) = try_prefixed_literal(cur) {
            return Some(kind);
        }
    }

    // Identifiers / keywords.
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return Some(TokenKind::Ident);
    }

    // Numbers. A digit right after a `.` punct is a tuple index (`x.0`),
    // lexed as a plain integer so `x.0.1` can't become a float.
    if c.is_ascii_digit() {
        let after_dot = prev.is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".");
        return Some(lex_number(cur, after_dot));
    }

    // Strings.
    if c == '"' {
        lex_string(cur);
        return Some(TokenKind::Str);
    }

    // Char literal or lifetime.
    if c == '\'' {
        return Some(lex_quote(cur));
    }

    // Multi-char operators (maximal munch), else a single punct char.
    for op in OPERATORS {
        if matches_str(cur, op) {
            for _ in 0..op.chars().count() {
                cur.bump();
            }
            return Some(TokenKind::Punct);
        }
    }
    cur.bump();
    Some(TokenKind::Punct)
}

/// Does the upcoming input start with `s`?
fn matches_str(cur: &Cursor<'_>, s: &str) -> bool {
    s.chars().enumerate().all(|(i, c)| cur.peek_at(i) == Some(c))
}

/// `r`/`b`/`c`-prefixed literals and raw identifiers. The cursor sits on
/// the prefix character; returns `None` if this is just an ordinary
/// identifier starting with one of those letters.
fn try_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    // Longest prefixes first: br, cr, then single letters.
    for prefix in ["br", "cr", "b", "c", "r"] {
        if !matches_str(cur, prefix) {
            continue;
        }
        let n = prefix.len(); // all-ASCII prefixes: chars == bytes
        let raw = prefix.ends_with('r');
        if raw {
            // r"…", r#"…"#, r#ident (bare `r` only).
            let mut guards = 0usize;
            while cur.peek_at(n + guards) == Some('#') {
                guards += 1;
            }
            if cur.peek_at(n + guards) == Some('"') {
                for _ in 0..n + guards {
                    cur.bump();
                }
                cur.bump(); // opening quote
                lex_raw_string_body(cur, guards);
                return Some(TokenKind::RawStr);
            }
            if prefix == "r" && guards >= 1 && cur.peek_at(n + 1).is_some_and(is_ident_start) {
                cur.bump(); // r
                cur.bump(); // #
                cur.eat_while(is_ident_continue);
                return Some(TokenKind::Ident);
            }
        } else {
            // b"…", c"…", b'…'.
            match cur.peek_at(n) {
                Some('"') => {
                    for _ in 0..n {
                        cur.bump();
                    }
                    lex_string(cur);
                    return Some(TokenKind::Str);
                }
                Some('\'') if prefix == "b" => {
                    cur.bump(); // b
                    cur.bump(); // '
                    lex_char_body(cur);
                    return Some(TokenKind::Char);
                }
                _ => {}
            }
        }
        // A matched prefix that opens no literal falls through to the next
        // (shorter) candidate — e.g. `break` matches "br" but is an ident.
    }
    None
}

/// Body of a raw string after the opening quote: runs to `"` followed by
/// `guards` hashes (or EOF).
fn lex_raw_string_body(cur: &mut Cursor<'_>, guards: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' && (0..guards).all(|i| cur.peek_at(i) == Some('#')) {
            for _ in 0..guards {
                cur.bump();
            }
            return;
        }
    }
}

/// A `"`-delimited string with escapes; cursor on the opening quote.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // the escaped char, whatever it is
            }
            '"' => return,
            _ => {}
        }
    }
}

/// After a consumed `'` (char-literal context): everything up to the
/// closing quote, escapes respected.
fn lex_char_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '\'' => return,
            _ => {}
        }
    }
}

/// `'` starts either a char literal or a lifetime. Disambiguation, in
/// order: `'\…` is a char; `'X'` (any single char then a quote) is a char;
/// an identifier run *not* closed by `'` is a lifetime; anything else is
/// treated as a (possibly malformed) char literal.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the quote
    match cur.peek() {
        Some('\\') => {
            lex_char_body(cur);
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            if cur.peek_at(1) == Some('\'') {
                // 'a' — single ident-ish char closed immediately.
                cur.bump();
                cur.bump();
                TokenKind::Char
            } else {
                cur.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` — empty/malformed char literal; consume the close.
            cur.bump();
            TokenKind::Char
        }
        Some(_) => {
            // Non-identifier char such as `'+'` or a multi-byte scalar.
            lex_char_body(cur);
            TokenKind::Char
        }
        None => TokenKind::Char,
    }
}

/// A numeric literal; `int_only` forces tuple-index lexing (no `.`/`e`).
fn lex_number(cur: &mut Cursor<'_>, int_only: bool) -> TokenKind {
    // Radix prefixes are always integers.
    if cur.peek() == Some('0')
        && matches!(cur.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
    {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return TokenKind::Int;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    if int_only {
        return TokenKind::Int;
    }
    let mut float = false;
    // Fractional part: a `.` followed by a digit (or by nothing that could
    // be a field/method/range: `1.` is a float, `1..2` and `1.max(2)` are
    // not).
    if cur.peek() == Some('.') {
        match cur.peek_at(1) {
            Some(c) if c.is_ascii_digit() => {
                float = true;
                cur.bump();
                cur.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
            Some('.') => {}                              // range `1..`
            Some(c) if is_ident_start(c) => {}           // method `1.max(…)`
            _ => {
                // trailing-dot float `1.`
                float = true;
                cur.bump();
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some('e' | 'E')) {
        let (sign, first_digit) = (cur.peek_at(1), cur.peek_at(2));
        let exp_ok = match sign {
            Some(c) if c.is_ascii_digit() => true,
            Some('+' | '-') => first_digit.is_some_and(|c| c.is_ascii_digit()),
            _ => false,
        };
        if exp_ok {
            float = true;
            cur.bump(); // e
            if matches!(cur.peek(), Some('+' | '-')) {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Suffix: `f32`/`f64` force float; integer suffixes stick to int.
    if matches_str(cur, "f32") || matches_str(cur, "f64") {
        for _ in 0..3 {
            cur.bump();
        }
        return TokenKind::Float;
    }
    cur.eat_while(is_ident_continue); // u8, i64, usize, …
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("let x = a == 1.0;"),
            vec![
                (Ident, "let"),
                (Ident, "x"),
                (Punct, "="),
                (Ident, "a"),
                (Punct, "=="),
                (Float, "1.0"),
                (Punct, ";"),
            ]
        );
    }

    #[test]
    fn tuple_index_is_not_a_float() {
        let t = kinds("x.0 .1 y.0.1");
        assert!(t.iter().all(|&(k, _)| k != TokenKind::Float), "{t:?}");
    }

    #[test]
    fn float_forms() {
        for src in ["1.0", "1.", "2e3", "2E-3", "1_000.5", "3f64", "1.5e+10", "7f32"] {
            let t = kinds(src);
            assert_eq!(t, vec![(TokenKind::Float, src)], "{src}");
        }
        for src in ["1", "0xFF", "0b1010", "10u64", "1_000", "0o77"] {
            let t = kinds(src);
            assert_eq!(t, vec![(TokenKind::Int, src)], "{src}");
        }
    }

    #[test]
    fn range_and_method_on_int() {
        use TokenKind::*;
        assert_eq!(
            kinds("0..10"),
            vec![(Int, "0"), (Punct, ".."), (Int, "10")]
        );
        assert_eq!(
            kinds("1.max(2)"),
            vec![(Int, "1"), (Punct, "."), (Ident, "max"), (Punct, "("), (Int, "2"), (Punct, ")")]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        use TokenKind::*;
        assert_eq!(kinds("'a"), vec![(Lifetime, "'a")]);
        assert_eq!(kinds("'a'"), vec![(Char, "'a'")]);
        assert_eq!(kinds("'\\n'"), vec![(Char, "'\\n'")]);
        assert_eq!(kinds("'static"), vec![(Lifetime, "'static")]);
        assert_eq!(kinds("b'x'"), vec![(Char, "b'x'")]);
        assert_eq!(kinds("'µ'"), vec![(Char, "'µ'")]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "x.unwrap() == 1.0";"#);
        assert!(t.iter().all(|&(k, x)| k != TokenKind::Float && x != "unwrap"), "{t:?}");
        let t = kinds(r##"let s = r#"panic!("no")"#;"##);
        assert_eq!(t[3].0, TokenKind::RawStr);
        assert!(!t.iter().any(|&(_, x)| x == "panic"));
    }

    #[test]
    fn raw_string_guards_and_byte_strings() {
        use TokenKind::*;
        assert_eq!(kinds(r###"r##"a "# b"##"###), vec![(RawStr, r###"r##"a "# b"##"###)]);
        assert_eq!(kinds(r#"b"bytes""#), vec![(Str, r#"b"bytes""#)]);
        assert_eq!(kinds(r##"br#"raw bytes"#"##), vec![(RawStr, r##"br#"raw bytes"#"##)]);
        assert_eq!(kinds(r#"c"cstr""#), vec![(Str, r#"c"cstr""#)]);
    }

    #[test]
    fn raw_identifiers_lose_their_sigil() {
        assert_eq!(kinds("r#type"), vec![(TokenKind::Ident, "type")]);
        // …but `r` alone and `break` stay ordinary identifiers.
        assert_eq!(kinds("r break"), vec![(TokenKind::Ident, "r"), (TokenKind::Ident, "break")]);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(t[0].0, TokenKind::BlockComment);
        assert_eq!(t[1], (TokenKind::Ident, "code"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_everything_hits_eof_quietly() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "1e", "r#"] {
            let _ = tokenize(src); // must not panic
        }
    }
}
