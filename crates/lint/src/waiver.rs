//! Inline lint waivers.
//!
//! A violation that is *intentional* is silenced at the site, reviewably,
//! with a comment of the form:
//!
//! ```text
//! // lint: allow(D005) engine invariant: the id was handed out by push()
//! some_call().unwrap();
//! ```
//!
//! Grammar: `lint:` then `allow(` a comma-separated list of rule ids `)`
//! then a **mandatory** free-text reason. The waiver covers findings of the
//! listed rules on its own line (trailing-comment style) and on the first
//! following line that holds code (comment-above style, so a waiver may sit
//! atop the statement it covers even with more comment lines in between is
//! NOT supported — it must be adjacent).
//!
//! A waiver with an empty reason is itself reported (rule `W000`) and does
//! not silence anything: the reason string is the artifact that makes the
//! waiver auditable. Unused waivers are surfaced as warnings so stale ones
//! get cleaned up rather than silently accumulating.

use crate::rules::RuleId;
use crate::tokenizer::{Token, TokenKind};

/// One parsed waiver comment.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Rules it silences.
    pub rules: Vec<RuleId>,
    /// The justification text (may be empty — then the waiver is invalid).
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Marked when some finding consumed this waiver.
    pub used: bool,
}

/// Scan comment tokens for waivers. Malformed waivers (unparsable id list)
/// are returned with an empty rule list so the caller can flag them.
pub fn collect(tokens: &[Token<'_>]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        if let Some(w) = parse_comment(t.text, t.line) {
            out.push(w);
        }
    }
    out
}

/// Parse one comment's text; `None` when it is not a waiver at all.
/// Waivers live in *plain* comments only — doc comments (`///`, `//!`,
/// `/**`, `/*!`) are documentation, where waiver-shaped text is prose
/// (this very module's docs would otherwise be a waiver).
fn parse_comment(text: &str, line: u32) -> Option<Waiver> {
    if ["///", "//!", "/**", "/*!"].iter().any(|d| text.starts_with(d)) {
        return None;
    }
    let rest = text.split_once("lint:").map(|(_, r)| r)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (ids, reason) = rest.split_once(')')?;
    let mut rules = Vec::new();
    for id in ids.split(',') {
        match RuleId::parse(id.trim()) {
            Some(r) => rules.push(r),
            None => {
                // Unknown id: return a waiver with no rules; the caller
                // reports it as invalid rather than silently ignoring it.
                rules.clear();
                break;
            }
        }
    }
    let reason = reason
        .trim()
        .trim_end_matches("*/")
        .trim()
        .to_string();
    Some(Waiver { rules, reason, line, used: false })
}

/// Does `w` cover a finding of `rule` at `line`? Valid placements: same
/// line, or the line directly above the finding.
pub fn covers(w: &Waiver, rule: RuleId, line: u32) -> bool {
    !w.reason.is_empty()
        && w.rules.contains(&rule)
        && (w.line == line || w.line + 1 == line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn one(src: &str) -> Waiver {
        let ws = collect(&tokenize(src));
        assert_eq!(ws.len(), 1, "{src:?}");
        ws.into_iter().next().expect("len checked")
    }

    #[test]
    fn parses_single_rule_and_reason() {
        let w = one("// lint: allow(D005) id handed out by push(), always valid");
        assert_eq!(w.rules, vec![RuleId::D005]);
        assert_eq!(w.reason, "id handed out by push(), always valid");
    }

    #[test]
    fn parses_rule_list() {
        let w = one("// lint: allow(D005, D006) test harness plumbing");
        assert_eq!(w.rules, vec![RuleId::D005, RuleId::D006]);
    }

    #[test]
    fn empty_reason_is_kept_but_invalid() {
        let w = one("// lint: allow(D003)");
        assert!(w.reason.is_empty());
        assert!(!covers(&w, RuleId::D003, w.line));
    }

    #[test]
    fn unknown_rule_id_yields_no_rules() {
        let w = one("// lint: allow(D999) whatever");
        assert!(w.rules.is_empty());
    }

    #[test]
    fn block_comment_waiver_drops_closer() {
        let w = one("/* lint: allow(D001) bench-only timing */");
        assert_eq!(w.reason, "bench-only timing");
        assert_eq!(w.rules, vec![RuleId::D001]);
    }

    #[test]
    fn non_waiver_comments_are_ignored() {
        assert!(collect(&tokenize("// plain comment\n// allow(D001) nope")).is_empty());
    }

    #[test]
    fn coverage_is_same_or_next_line() {
        let w = one("// lint: allow(D006) report printer\n");
        assert!(covers(&w, RuleId::D006, 1));
        assert!(covers(&w, RuleId::D006, 2));
        assert!(!covers(&w, RuleId::D006, 3));
        assert!(!covers(&w, RuleId::D005, 1));
    }
}
