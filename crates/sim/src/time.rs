//! Simulation time.
//!
//! All protocol timing in the DOMINO reproduction is expressed in integer
//! nanoseconds. The paper's protocol constants are microsecond-scale (a WiFi
//! slot is 9 µs, a signature is 6.35 µs), so nanoseconds give sub-slot
//! resolution with plenty of headroom: `u64` nanoseconds can represent about
//! 584 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant on the simulation clock.
///
/// `SimTime` is a monotonically non-decreasing value managed by the
/// [`Engine`](crate::engine::Engine). Time zero is the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds since simulation start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds since simulation start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds since simulation start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds since simulation start.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Absolute difference between two instants.
    #[inline]
    pub fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Panics if negative or non-finite.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "duration must be finite and non-negative");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Panics if negative or non-finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow")) // lint: allow(D005) overflow guard: clock arithmetic must crash, not wrap
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow")) // lint: allow(D005) overflow guard: clock arithmetic must crash, not wrap
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow")) // lint: allow(D005) overflow guard: clock arithmetic must crash, not wrap
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow")) // lint: allow(D005) overflow guard: clock arithmetic must crash, not wrap
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow")) // lint: allow(D005) overflow guard: clock arithmetic must crash, not wrap
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow")) // lint: allow(D005) overflow guard: clock arithmetic must crash, not wrap
    }
}

impl core::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(9).as_nanos(), 9_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(50).as_secs_f64(), 50.0);
        assert_eq!(SimDuration::from_micros(10).as_nanos(), 10_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(9);
        assert_eq!((t + d).as_nanos(), 109_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_nanos(), 91_000);
    }

    #[test]
    fn fractional_micros() {
        // A signature is 6.35 us; check we hold it exactly in ns.
        let sig = SimDuration::from_micros_f64(6.35);
        assert_eq!(sig.as_nanos(), 6_350);
        assert_eq!(sig.as_micros_f64(), 6.35);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(8);
        assert_eq!(b.saturating_since(a).as_micros(), 3);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(a.abs_diff(b).as_micros(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_underflow_panics() {
        let _ = SimTime::from_micros(1) - SimDuration::from_micros(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(6350)), "6.350us");
    }
}
