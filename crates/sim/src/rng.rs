//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`] that
//! is derived from the run's master seed plus a per-subsystem stream label.
//! Deriving independent streams (rather than sharing one generator) keeps
//! runs reproducible even when one subsystem changes how many numbers it
//! consumes: the wired-jitter stream, the PHY-error stream, and the traffic
//! stream never perturb each other.
//!
//! The generator itself is `domino-testkit`'s in-tree xoshiro256++, seeded
//! through SplitMix64 expansion of `(master_seed, stream)` — no external
//! `rand` crate, so the workspace builds hermetically. Normal deviates use
//! Box–Muller. See [`domino_testkit::rng`] for the full API.

/// A deterministic RNG stream for one simulator subsystem.
///
/// Re-exported from `domino-testkit` so the simulator, the PHY and the
/// property tests all share one generator implementation (and therefore one
/// definition of "same seed ⇒ same run").
pub use domino_testkit::rng::Rng as SimRng;

/// Stable stream labels for the simulator's subsystems.
pub mod streams {
    /// Wired backbone latency jitter.
    pub const WIRED_JITTER: u64 = 0x01;
    /// PHY reception error draws.
    pub const PHY_ERROR: u64 = 0x02;
    /// Traffic generation (arrival processes).
    pub const TRAFFIC: u64 = 0x03;
    /// DCF backoff draws.
    pub const DCF_BACKOFF: u64 = 0x04;
    /// Topology generation (placement, client selection).
    pub const TOPOLOGY: u64 = 0x05;
    /// Signature detection draws.
    pub const SIGNATURE: u64 = 0x06;
    /// Central scheduler tie-breaking.
    pub const SCHEDULER: u64 = 0x07;
    /// ROP decode draws.
    pub const ROP: u64 = 0x08;
    /// Sample-level PHY experiments (noise, CFO).
    pub const PHY_SAMPLES: u64 = 0x09;
    /// Fault plane: wired backbone message loss and delay spikes.
    pub const FAULT_WIRED: u64 = 0x0A;
    /// Fault plane: AP crash/restart and controller compute stalls.
    pub const FAULT_NODE: u64 = 0x0B;
    /// Fault plane: correlated signature fades and ROP corruption.
    pub const FAULT_CHANNEL: u64 = 0x0C;
    /// Fault plane: client join/leave churn schedules.
    pub const FAULT_CHURN: u64 = 0x0D;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Named stream ids for the statistical self-tests (D008). Values match
    // the original bare literals so the pinned sequences are unchanged;
    // these streams are test-local and never reach a simulation.
    const T_UNIFORM: u64 = 0;
    const T_NORMAL: u64 = 1;
    const T_EXPONENTIAL: u64 = 2;
    const T_CHANCE: u64 = 1;
    const T_SHUFFLE: u64 = 5;
    const T_PICK: u64 = 6;

    #[test]
    fn same_seed_same_stream_reproduces() {
        let mut a = SimRng::derive(42, streams::TRAFFIC);
        let mut b = SimRng::derive(42, streams::TRAFFIC);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SimRng::derive(42, streams::TRAFFIC);
        let mut b = SimRng::derive(42, streams::WIRED_JITTER);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::derive(7, T_UNIFORM);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::derive(3, T_NORMAL);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal(285.0, 22.0);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 285.0).abs() < 0.5, "mean={mean}");
        assert!((var.sqrt() - 22.0).abs() < 0.5, "std={}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::derive(9, T_EXPONENTIAL);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::derive(1, T_CHANCE);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::derive(5, T_SHUFFLE);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_index_bounds() {
        let mut r = SimRng::derive(6, T_PICK);
        assert_eq!(r.pick_index(0), None);
        for _ in 0..100 {
            assert!(r.pick_index(7).unwrap() < 7);
        }
    }
}
