//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator draws from a [`SimRng`] that
//! is derived from the run's master seed plus a per-subsystem stream label.
//! Deriving independent streams (rather than sharing one generator) keeps
//! runs reproducible even when one subsystem changes how many numbers it
//! consumes: the wired-jitter stream, the PHY-error stream, and the traffic
//! stream never perturb each other.
//!
//! The generator itself is `rand`'s `StdRng` seeded through SplitMix64
//! expansion of `(master_seed, stream)`. Normal deviates use Box–Muller so we
//! do not need a distributions crate.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step; used to expand a (seed, stream) pair into 32 seed bytes.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG stream for one simulator subsystem.
pub struct SimRng {
    inner: StdRng,
    /// Cached second Box–Muller deviate.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Derive a stream from the run's master seed and a stream label.
    ///
    /// The label should be a stable constant per subsystem (see
    /// [`streams`]). Distinct labels yield statistically independent
    /// streams for the same master seed.
    pub fn derive(master_seed: u64, stream: u64) -> Self {
        let mut state = master_seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        SimRng { inner: StdRng::from_seed(seed), spare_normal: None }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p` of `true` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal deviate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev");
        mean + std_dev * self.standard_normal()
    }

    /// Exponential deviate with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "non-positive mean");
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element index, or `None` for an empty slice.
    #[inline]
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.below(len as u64) as usize)
        }
    }

    /// Raw 64-bit draw (for deriving sub-streams or hashing).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Stable stream labels for the simulator's subsystems.
pub mod streams {
    /// Wired backbone latency jitter.
    pub const WIRED_JITTER: u64 = 0x01;
    /// PHY reception error draws.
    pub const PHY_ERROR: u64 = 0x02;
    /// Traffic generation (arrival processes).
    pub const TRAFFIC: u64 = 0x03;
    /// DCF backoff draws.
    pub const DCF_BACKOFF: u64 = 0x04;
    /// Topology generation (placement, client selection).
    pub const TOPOLOGY: u64 = 0x05;
    /// Signature detection draws.
    pub const SIGNATURE: u64 = 0x06;
    /// Central scheduler tie-breaking.
    pub const SCHEDULER: u64 = 0x07;
    /// ROP decode draws.
    pub const ROP: u64 = 0x08;
    /// Sample-level PHY experiments (noise, CFO).
    pub const PHY_SAMPLES: u64 = 0x09;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_reproduces() {
        let mut a = SimRng::derive(42, streams::TRAFFIC);
        let mut b = SimRng::derive(42, streams::TRAFFIC);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SimRng::derive(42, streams::TRAFFIC);
        let mut b = SimRng::derive(42, streams::WIRED_JITTER);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::derive(7, 0);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::derive(3, 1);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal(285.0, 22.0);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 285.0).abs() < 0.5, "mean={mean}");
        assert!((var.sqrt() - 22.0).abs() < 0.5, "std={}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::derive(9, 2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::derive(1, 1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::derive(5, 5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_index_bounds() {
        let mut r = SimRng::derive(6, 6);
        assert_eq!(r.pick_index(0), None);
        for _ in 0..100 {
            assert!(r.pick_index(7).unwrap() < 7);
        }
    }
}
