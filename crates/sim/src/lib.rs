//! # domino-sim
//!
//! Deterministic discrete-event simulation substrate for the DOMINO
//! (CoNEXT'13) reproduction.
//!
//! The paper evaluates DOMINO with trace-driven ns-3 simulations; this crate
//! provides the equivalent foundation in Rust:
//!
//! * [`time`] — integer-nanosecond simulation clock types,
//! * [`engine`] — a binary-heap event queue with FIFO tie-breaking,
//!   cancellation, and horizon-bounded delivery,
//! * [`rng`] — per-subsystem deterministic random streams.
//!
//! Everything is a pure function of `(configuration, seed)`; there is no
//! wall-clock access anywhere in the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod rng;
pub mod time;

pub use engine::{Engine, EventHandle, Livelock};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
