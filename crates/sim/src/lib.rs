//! # domino-sim
//!
//! Deterministic discrete-event simulation substrate for the DOMINO
//! (CoNEXT'13) reproduction.
//!
//! The paper evaluates DOMINO with trace-driven ns-3 simulations; this crate
//! provides the equivalent foundation in Rust:
//!
//! * [`time`] — integer-nanosecond simulation clock types,
//! * [`engine`] — a hierarchical timer-wheel event queue with FIFO
//!   tie-breaking, O(1) generation-checked cancellation, and
//!   horizon-bounded delivery,
//! * [`oracle`] — the original binary-heap queue, retained as the
//!   differential-testing reference for the wheel,
//! * [`rng`] — per-subsystem deterministic random streams.
//!
//! Everything is a pure function of `(configuration, seed)`; there is no
//! wall-clock access anywhere in the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod oracle;
pub mod rng;
pub mod time;
mod wheel;

pub use engine::{Engine, EventHandle, Livelock};
pub use oracle::ReferenceQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
