//! The reference event queue for differential testing.
//!
//! [`ReferenceQueue`] is the engine's original `BinaryHeap<(time, seq)>`
//! implementation, kept verbatim in spirit as the *oracle* that pins the
//! timer wheel's delivery semantics: the property suite in
//! `crates/sim/tests/differential.rs` drives arbitrary interleaved
//! schedule / cancel / pop / `pop_until` sequences against both queues and
//! asserts identical `(time, payload)` streams, clocks, and pending counts.
//!
//! It is deliberately the *simple* implementation — O(log n) heap ops, a
//! seq-keyed live-set for cancellation — because its correctness is easy to
//! see by inspection: the heap's `(time, seq)` min-order **is** the
//! specification ("earliest time first, FIFO among ties"). One deviation
//! from the retired production code is intentional: `cancel` consults the
//! live-set instead of blindly inserting a tombstone, so cancelling an
//! already-delivered handle correctly reports `false` and cannot corrupt
//! [`pending`](ReferenceQueue::pending) — the documented semantics, which
//! the wheel also implements.
//!
//! This type is test infrastructure, not simulation surface: nothing under
//! `crates/{phy,medium,mac,runner}` may depend on it.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Handle naming an event scheduled on a [`ReferenceQueue`]; wraps the
/// event's sequence number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RefHandle(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Binary-heap event queue: the specification oracle for
/// [`Engine`](crate::engine::Engine).
pub struct ReferenceQueue<E> {
    queue: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    /// Sequence numbers of still-pending (not delivered, not cancelled)
    /// events. A BTreeSet keeps iteration deterministic (lint D002).
    live: BTreeSet<u64>,
    processed: u64,
}

impl<E> std::fmt::Debug for ReferenceQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceQueue")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("processed", &self.processed)
            .finish_non_exhaustive()
    }
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        ReferenceQueue {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            live: BTreeSet::new(),
            processed: 0,
        }
    }

    /// Current simulation time (timestamp of the last delivered event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of live pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedule `payload` at absolute time `at`; panics when `at` is in
    /// the past (same contract as the engine).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> RefHandle {
        assert!(at >= self.now, "cannot schedule into the past: {at:?} < {:?}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry { time: at, seq, payload });
        self.live.insert(seq);
        RefHandle(seq)
    }

    /// Schedule `payload` after `delay` from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> RefHandle {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedule `payload` at the current instant.
    #[inline]
    pub fn schedule_now(&mut self, payload: E) -> RefHandle {
        self.schedule_at(self.now, payload)
    }

    /// Cancel a pending event; `true` iff it was still live. Delivered,
    /// already-cancelled, and never-issued handles report `false`.
    pub fn cancel(&mut self, handle: RefHandle) -> bool {
        self.live.remove(&handle.0)
    }

    /// Pop the next live event not later than `horizon`, skipping cancelled
    /// tombstones; the clock stays put on a horizon miss.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        loop {
            let head = self.queue.peek_mut()?;
            if head.time > horizon {
                return None;
            }
            let entry = std::collections::binary_heap::PeekMut::pop(head);
            if !self.live.remove(&entry.seq) {
                continue; // cancelled tombstone
            }
            debug_assert!(entry.time >= self.now, "event queue delivered out of order");
            self.now = entry.time;
            self.processed += 1;
            return Some((entry.time, entry.payload));
        }
    }

    /// Pop the next live event regardless of horizon.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_until(SimTime::MAX)
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Prune leading tombstones so the peek is accurate.
        while let Some(head) = self.queue.peek_mut() {
            if self.live.contains(&head.seq) {
                return Some(head.time);
            }
            let _ = std::collections::binary_heap::PeekMut::pop(head);
        }
        None
    }

    /// Advance the clock without delivering; same panics as the engine.
    pub fn fast_forward(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot move the clock backwards");
        if let Some(next) = self.peek_time() {
            assert!(at <= next, "fast_forward would skip a pending event at {next:?}");
        }
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_orders_and_cancels() {
        let mut q = ReferenceQueue::new();
        let t = SimTime::from_micros(7);
        let h0 = q.schedule_at(t, 0u32);
        let _h1 = q.schedule_at(t, 1u32);
        q.schedule_at(SimTime::from_micros(3), 2u32);
        assert!(q.cancel(h0));
        assert!(!q.cancel(h0));
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), 2)));
        assert_eq!(q.peek_time(), Some(t));
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pending(), 0);
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn oracle_cancel_after_delivery_is_false() {
        let mut q = ReferenceQueue::new();
        let h = q.schedule_at(SimTime::from_micros(1), 9u32);
        assert!(q.pop().is_some());
        assert!(!q.cancel(h));
        assert_eq!(q.pending(), 0);
    }
}
