//! The discrete-event engine.
//!
//! [`Engine`] owns the pending-event queue and the simulation clock. The
//! simulation world (medium, MAC instances, traffic sources, controller) is
//! owned by the caller; the main loop is:
//!
//! ```
//! use domino_sim::engine::Engine;
//! use domino_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Tick(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::from_micros(10), Ev::Tick(0));
//! let mut ticks = 0;
//! while let Some((now, ev)) = engine.pop_until(SimTime::from_secs(1)) {
//!     match ev {
//!         Ev::Tick(n) if n < 3 => {
//!             ticks += 1;
//!             engine.schedule_in(SimDuration::from_micros(10), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(_) => { ticks += 1; }
//!     }
//!     let _ = now;
//! }
//! assert_eq!(ticks, 4);
//! ```
//!
//! Events scheduled for the same instant are delivered in scheduling order
//! (FIFO), which makes runs fully deterministic.
//!
//! # Implementation
//!
//! The queue is a hierarchical timer wheel ([`crate::wheel`]): O(1)
//! scheduling and cancellation, amortized-O(1) delivery, and bounded memory
//! under cancellation churn (entries are arena slots on a free list, not
//! heap tombstones). The delivery order is the same `(time, seq)` total
//! order the original binary-heap queue produced — that queue survives as
//! [`crate::oracle::ReferenceQueue`], and the differential property suite
//! in `crates/sim/tests/` drives arbitrary operation interleavings against
//! both to pin the equivalence.

use crate::time::{SimDuration, SimTime};
use crate::wheel::{TimerWheel, WheelHandle};
use domino_obs::{TraceEvent, TraceHandle};

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Handles are generation-checked: after the event is delivered or
/// cancelled the handle goes permanently stale, and a stale handle can
/// never alias a later event even when its storage is reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventHandle(u64);

impl EventHandle {
    /// Pack a wheel `(index, generation)` pair.
    #[inline]
    fn pack(h: WheelHandle) -> EventHandle {
        EventHandle((u64::from(h.gen) << 32) | u64::from(h.index))
    }

    /// Recover the wheel handle.
    #[inline]
    fn unpack(self) -> WheelHandle {
        WheelHandle { index: self.0 as u32, gen: (self.0 >> 32) as u32 }
    }
}

/// Default liveness budget: events allowed per liveness window before the
/// engine declares a livelock. The ceiling has to clear the largest
/// same-instant cascade a *legitimate* run produces — DOMINO under heavy
/// TCP on T(10,2) has been measured at ~350k events inside one window at a
/// batch boundary — so the default sits an order of magnitude above that.
/// A genuine non-terminating spin still trips it within seconds of wall
/// time.
pub const DEFAULT_EVENT_BUDGET: u64 = 5_000_000;

/// Default liveness window of simulated time over which the event budget
/// applies.
pub const DEFAULT_LIVENESS_WINDOW: SimDuration = SimDuration::from_millis(1);

/// Typed error returned by [`Engine::pop_until_checked`] when the event
/// rate exceeds the configured budget without the clock advancing past the
/// liveness window — i.e. the run is spinning instead of making progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Livelock {
    /// Simulation time at which the budget was exhausted.
    pub at: SimTime,
    /// Events delivered inside the current window when the check fired.
    pub events_in_window: u64,
    /// The configured per-window budget.
    pub budget: u64,
}

impl std::fmt::Display for Livelock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "livelock at {:?}: {} events in one liveness window (budget {})",
            self.at, self.events_in_window, self.budget
        )
    }
}

impl std::error::Error for Livelock {}

/// Progress-tracking state for the liveness monitor.
#[derive(Clone, Copy, Debug)]
struct Liveness {
    budget: u64,
    window: SimDuration,
    window_start: SimTime,
    window_events: u64,
}

/// Discrete-event queue plus simulation clock.
pub struct Engine<E> {
    wheel: TimerWheel<E>,
    processed: u64,
    liveness: Option<Liveness>,
    tracer: TraceHandle,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Payloads need not be Debug; summarize the queue instead.
        f.debug_struct("Engine")
            .field("now", &self.now())
            .field("pending", &self.pending())
            .field("processed", &self.processed)
            .finish_non_exhaustive()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Create an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            wheel: TimerWheel::new(),
            processed: 0,
            liveness: None,
            tracer: TraceHandle::off(),
        }
    }

    /// Attach a trace sink. Observation only — attaching never changes
    /// event order, timing, or RNG state; the engine emits
    /// [`TraceEvent::LivelockCheck`] at every liveness-window roll and
    /// [`TraceEvent::Livelock`] when the budget trips.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    /// Arm the liveness monitor: more than `budget` events delivered while
    /// the clock stays inside one `window` of simulated time makes
    /// [`Engine::pop_until_checked`] return a [`Livelock`]. Observation
    /// only — arming never changes event order, timing, or RNG state.
    pub fn set_liveness(&mut self, budget: u64, window: SimDuration) {
        self.liveness = Some(Liveness {
            budget,
            window,
            window_start: self.now(),
            window_events: 0,
        });
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.wheel.cursor())
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending. Cancelled events leave the count
    /// immediately — the wheel has no tombstones.
    #[inline]
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// True when no live events remain.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Arena high-water mark: event slots ever allocated. Bounded by the
    /// peak number of *simultaneously* pending events regardless of how
    /// many schedule/cancel cycles have run — the bounded-memory contract
    /// the cancellation-churn stress test pins. Diagnostic only.
    #[inline]
    pub fn arena_slots(&self) -> usize {
        self.wheel.arena_slots()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Panics if `at` is before the current time: the past is immutable.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(at >= self.now(), "cannot schedule into the past: {at:?} < {:?}", self.now());
        EventHandle::pack(self.wheel.insert(at.as_nanos(), payload))
    }

    /// Schedule `payload` after `delay` from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventHandle {
        self.schedule_at(self.now() + delay, payload)
    }

    /// Schedule `payload` at the current instant (delivered after all
    /// already-queued events for this instant).
    #[inline]
    pub fn schedule_now(&mut self, payload: E) -> EventHandle {
        self.schedule_at(self.now(), payload)
    }

    /// Cancel a previously scheduled event in O(1). Returns `true` if the
    /// event was still pending. Cancelling an already-delivered,
    /// already-cancelled, or never-issued handle is a `false` no-op — the
    /// generation check makes stale handles harmless.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.wheel.cancel(handle.unpack())
    }

    /// Pop the next event not later than `horizon`. Advances the clock to
    /// the event's timestamp. Returns `None` when the queue is exhausted or
    /// the next event lies beyond the horizon (the clock then stays put).
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let (time, payload) = self.wheel.pop_min_until(horizon.as_nanos())?;
        self.processed += 1;
        Some((SimTime::from_nanos(time), payload))
    }

    /// Pop the next event regardless of horizon.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_until(SimTime::MAX)
    }

    /// [`Engine::pop_until`] under the liveness monitor: delivers the next
    /// event, or returns a typed [`Livelock`] once the per-window event
    /// budget set by [`Engine::set_liveness`] is exhausted without the
    /// clock leaving the window. With no monitor armed this is exactly
    /// `pop_until`.
    pub fn pop_until_checked(
        &mut self,
        horizon: SimTime,
    ) -> Result<Option<(SimTime, E)>, Livelock> {
        let popped = self.pop_until(horizon);
        if let (Some((t, _)), Some(liv)) = (&popped, &mut self.liveness) {
            if *t >= liv.window_start + liv.window {
                let closed = liv.window_events;
                self.tracer.emit(t.as_nanos(), move || TraceEvent::LivelockCheck {
                    events_in_window: closed,
                });
                liv.window_start = *t;
                liv.window_events = 0;
            }
            liv.window_events += 1;
            if liv.window_events > liv.budget {
                let (events, budget) = (liv.window_events, liv.budget);
                self.tracer.emit(t.as_nanos(), move || TraceEvent::Livelock {
                    events_in_window: events,
                    budget,
                });
                return Err(Livelock {
                    at: *t,
                    events_in_window: liv.window_events,
                    budget: liv.budget,
                });
            }
        }
        Ok(popped)
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek_min().map(SimTime::from_nanos)
    }

    /// Advance the clock to `at` without delivering anything. Used at the
    /// end of a run to account for trailing idle time. Panics when moving
    /// backwards or past a pending event.
    pub fn fast_forward(&mut self, at: SimTime) {
        assert!(at >= self.now(), "cannot move the clock backwards");
        if let Some(next) = self.peek_time() {
            assert!(at <= next, "fast_forward would skip a pending event at {next:?}");
        }
        self.wheel.advance(at.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A(u32),
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_micros(30), Ev::A(3));
        e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.schedule_at(SimTime::from_micros(20), Ev::A(2));
        let order: Vec<u32> = std::iter::from_fn(|| e.pop())
            .map(|(_, Ev::A(n))| n)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.now(), SimTime::from_micros(30));
        assert_eq!(e.events_processed(), 3);
    }

    #[test]
    fn ties_are_fifo() {
        let mut e = Engine::new();
        let t = SimTime::from_micros(5);
        for n in 0..10 {
            e.schedule_at(t, Ev::A(n));
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop())
            .map(|(_, Ev::A(n))| n)
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.schedule_at(SimTime::from_micros(100), Ev::A(2));
        assert!(e.pop_until(SimTime::from_micros(50)).is_some());
        assert!(e.pop_until(SimTime::from_micros(50)).is_none());
        // Clock did not advance past the horizon check.
        assert_eq!(e.now(), SimTime::from_micros(10));
        assert!(e.pop().is_some());
    }

    #[test]
    fn cancellation() {
        let mut e = Engine::new();
        let h1 = e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.schedule_at(SimTime::from_micros(20), Ev::A(2));
        assert!(e.cancel(h1));
        assert!(!e.cancel(h1), "double-cancel reports false");
        let (_, ev) = e.pop().unwrap();
        assert_eq!(ev, Ev::A(2));
        assert!(e.pop().is_none());
        assert_eq!(e.events_processed(), 1);
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut e: Engine<Ev> = Engine::new();
        assert!(!e.cancel(EventHandle(999)));
    }

    #[test]
    fn cancel_after_delivery_returns_false() {
        let mut e = Engine::new();
        let h = e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        assert!(e.pop().is_some());
        assert!(!e.cancel(h), "delivered events are not cancellable");
        assert_eq!(e.pending(), 0, "a late cancel must not corrupt pending()");
    }

    #[test]
    fn stale_handle_never_aliases_reused_storage() {
        let mut e = Engine::new();
        let h1 = e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        assert!(e.cancel(h1));
        // The replacement event reuses h1's storage slot.
        let h2 = e.schedule_at(SimTime::from_micros(20), Ev::A(2));
        assert_ne!(h1, h2);
        assert!(!e.cancel(h1), "stale handle must miss the reused slot");
        assert_eq!(e.pending(), 1);
        assert!(e.cancel(h2));
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut e = Engine::new();
        let h = e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.schedule_at(SimTime::from_micros(20), Ev::A(2));
        assert_eq!(e.pending(), 2);
        e.cancel(h);
        assert_eq!(e.pending(), 1);
        assert!(!e.is_idle());
        e.pop();
        assert!(e.is_idle());
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.pop();
        e.schedule_in(SimDuration::from_micros(5), Ev::A(2));
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.pop();
        e.schedule_at(SimTime::from_micros(5), Ev::A(2));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut e = Engine::new();
        let h = e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.schedule_at(SimTime::from_micros(20), Ev::A(2));
        e.cancel(h);
        assert_eq!(e.peek_time(), Some(SimTime::from_micros(20)));
    }

    #[test]
    fn fast_forward_advances_clock() {
        let mut e: Engine<Ev> = Engine::new();
        e.fast_forward(SimTime::from_secs(50));
        assert_eq!(e.now(), SimTime::from_secs(50));
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn fast_forward_cannot_skip_events() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.fast_forward(SimTime::from_micros(20));
    }

    #[test]
    fn fast_forward_to_pending_event_keeps_it_deliverable() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_micros(10), Ev::A(1));
        e.schedule_at(SimTime::from_micros(10), Ev::A(2));
        e.fast_forward(SimTime::from_micros(10));
        assert_eq!(e.pop(), Some((SimTime::from_micros(10), Ev::A(1))));
        assert_eq!(e.pop(), Some((SimTime::from_micros(10), Ev::A(2))));
    }

    #[test]
    fn liveness_catches_zero_time_spin() {
        let mut e = Engine::new();
        e.set_liveness(100, SimDuration::from_millis(1));
        e.schedule_at(SimTime::from_micros(10), Ev::A(0));
        let horizon = SimTime::from_secs(1);
        let err = loop {
            match e.pop_until_checked(horizon) {
                Ok(Some((_, Ev::A(n)))) => {
                    // A self-perpetuating same-instant event: never advances.
                    e.schedule_now(Ev::A(n + 1));
                }
                Ok(None) => panic!("spin should not drain"),
                Err(lv) => break lv,
            }
        };
        assert_eq!(err.at, SimTime::from_micros(10));
        assert_eq!(err.budget, 100);
        assert!(err.events_in_window > err.budget);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn liveness_stays_quiet_when_time_advances() {
        let mut e = Engine::new();
        e.set_liveness(10, SimDuration::from_micros(100));
        e.schedule_at(SimTime::ZERO, Ev::A(0));
        let horizon = SimTime::from_secs(1);
        let mut count = 0u32;
        while let Some((_, Ev::A(n))) =
            e.pop_until_checked(horizon).expect("progressing run is live")
        {
            count += 1;
            if n < 5_000 {
                // Sparse enough that each window sees few events.
                e.schedule_in(SimDuration::from_micros(50), Ev::A(n + 1));
            }
        }
        assert_eq!(count, 5_001);
    }

    #[test]
    fn unarmed_checked_pop_is_plain_pop_until() {
        let mut e = Engine::new();
        for n in 0..10_000 {
            e.schedule_at(SimTime::from_nanos(5), Ev::A(n));
        }
        let horizon = SimTime::from_secs(1);
        let mut seen = 0;
        while let Ok(Some(_)) = e.pop_until_checked(horizon) {
            seen += 1;
        }
        assert_eq!(seen, 10_000);
    }
}
