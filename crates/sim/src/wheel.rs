//! Hierarchical timer wheel: the event-queue core behind [`crate::engine::Engine`].
//!
//! Replaces the original `BinaryHeap<(time, seq)>` queue (preserved as the
//! differential-test oracle in [`crate::oracle`]) with a radix timing wheel:
//!
//! * **Geometry.** 11 levels × 64 slots. Level `L` buckets pending events by
//!   bits `[6L, 6L+6)` of their absolute nanosecond timestamp; 11 × 6 = 66
//!   bits covers the full `u64` clock, so there is no overflow list. An
//!   event lives at the *lowest* level at which its timestamp differs from
//!   the wheel cursor — equivalently `level = msb(t ^ cursor) / 6` — which
//!   means a level-0 bucket only ever holds events with one exact
//!   timestamp, and same-instant FIFO order is plain list order.
//! * **Placement invariant.** Every pending event sits in the bucket
//!   determined by `(its time, the current cursor)`. The cursor only moves
//!   forward when an event is delivered (or the clock is fast-forwarded),
//!   and it never passes a pending event, so re-bucketing ("cascading") is
//!   confined to the buckets that contain the new cursor time — at most one
//!   per level per advance, each event cascading at most 10 times over its
//!   whole life (amortized O(1)).
//! * **Determinism contract.** Delivery order is exactly the heap's
//!   `(time, seq)` total order. Two events with equal timestamps occupy the
//!   same bucket at every point in their lives (placement is a pure
//!   function of time and cursor), insertion appends at the tail, and
//!   cascades walk head→tail re-appending in order — so list order *is*
//!   schedule order. The differential suite in `crates/sim/tests/`
//!   pins this against the heap oracle.
//! * **Storage.** Entries live in a slab arena and link into their bucket
//!   through intrusive prev/next indices. Cancellation is O(1): a
//!   generation check, an unlink, and a push onto the internal free list —
//!   no tombstones anywhere, so memory is bounded by the peak number of
//!   simultaneously pending events regardless of churn.

/// Bits per wheel level (64 slots).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; `LEVELS * SLOT_BITS >= 64` covers every `u64` instant.
const LEVELS: usize = 11;
/// Null index for intrusive links and the free list.
const NIL: u32 = u32::MAX;
/// `bucket` value marking an arena slot as free.
const FREE: u16 = u16::MAX;

/// One arena slot: either a pending event or a free-list node.
struct Node<E> {
    /// Absolute due time in nanoseconds.
    time: u64,
    /// Generation, bumped on every allocation *and* every release, so a
    /// slot's live generations are odd and any stale handle misses.
    gen: u32,
    /// Owning bucket (`level * SLOTS + slot`), or [`FREE`].
    bucket: u16,
    /// Previous node in the bucket list, or [`NIL`].
    prev: u32,
    /// Next node in the bucket list (doubles as the free-list link).
    next: u32,
    /// The event payload; `None` while the slot is free.
    payload: Option<E>,
}

/// Intrusive doubly-linked list head/tail for one bucket.
#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket { head: NIL, tail: NIL };
}

/// A `(arena index, generation)` pair naming one scheduled event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct WheelHandle {
    pub(crate) index: u32,
    pub(crate) gen: u32,
}

/// The timer wheel. See the module docs for the design.
pub(crate) struct TimerWheel<E> {
    arena: Vec<Node<E>>,
    /// Head of the free list (linked through `Node::next`).
    free: u32,
    /// Per-level slot-occupancy bitmaps; bit `s` of `occ[L]` is set iff
    /// bucket `(L, s)` is non-empty.
    occ: [u64; LEVELS],
    buckets: Vec<Bucket>,
    /// Wheel position: no pending event is earlier than this instant.
    cursor: u64,
    /// Number of pending events.
    live: usize,
}

impl<E> TimerWheel<E> {
    /// An empty wheel with the cursor at time zero.
    pub(crate) fn new() -> TimerWheel<E> {
        TimerWheel {
            arena: Vec::new(),
            free: NIL,
            occ: [0; LEVELS],
            buckets: vec![Bucket::EMPTY; LEVELS * SLOTS],
            cursor: 0,
            live: 0,
        }
    }

    /// Current wheel position (nanoseconds).
    #[inline]
    pub(crate) fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Number of pending events.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Arena high-water mark: slots ever allocated. Bounded by the peak
    /// number of *simultaneously* pending events (free slots are reused),
    /// which the cancellation-churn stress test pins.
    #[inline]
    pub(crate) fn arena_slots(&self) -> usize {
        self.arena.len()
    }

    /// The bucket index for an event at `time` given the current cursor.
    #[inline]
    fn bucket_of(&self, time: u64) -> usize {
        let xor = time ^ self.cursor;
        if xor == 0 {
            // Same instant as the cursor: level 0, the cursor's own slot.
            return (self.cursor & (SLOTS as u64 - 1)) as usize;
        }
        let level = ((63 - xor.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((time >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        level * SLOTS + slot
    }

    /// Append node `idx` to bucket `bucket` (tail insertion keeps FIFO).
    fn push_bucket(&mut self, bucket: usize, idx: u32) {
        let tail = self.buckets[bucket].tail;
        self.arena[idx as usize].bucket = bucket as u16;
        self.arena[idx as usize].prev = tail;
        self.arena[idx as usize].next = NIL;
        if tail == NIL {
            self.buckets[bucket].head = idx;
            self.occ[bucket / SLOTS] |= 1u64 << (bucket % SLOTS);
        } else {
            self.arena[tail as usize].next = idx;
        }
        self.buckets[bucket].tail = idx;
    }

    /// Unlink node `idx` from its bucket, clearing the occupancy bit when
    /// the bucket empties. The node keeps its payload; the caller decides
    /// whether it is delivered or released.
    fn unlink(&mut self, idx: u32) {
        let (bucket, prev, next) = {
            let n = &self.arena[idx as usize];
            (n.bucket as usize, n.prev, n.next)
        };
        if prev == NIL {
            self.buckets[bucket].head = next;
        } else {
            self.arena[prev as usize].next = next;
        }
        if next == NIL {
            self.buckets[bucket].tail = prev;
        } else {
            self.arena[next as usize].prev = prev;
        }
        if self.buckets[bucket].head == NIL {
            self.occ[bucket / SLOTS] &= !(1u64 << (bucket % SLOTS));
        }
    }

    /// Return node `idx` to the free list and bump its generation so every
    /// outstanding handle to it goes stale.
    fn release(&mut self, idx: u32) {
        let n = &mut self.arena[idx as usize];
        n.gen = n.gen.wrapping_add(1);
        n.bucket = FREE;
        n.prev = NIL;
        n.payload = None;
        n.next = self.free;
        self.free = idx;
    }

    /// Schedule `payload` at absolute `time` (nanoseconds). The caller
    /// (the engine) guarantees `time >= cursor`.
    pub(crate) fn insert(&mut self, time: u64, payload: E) -> WheelHandle {
        debug_assert!(time >= self.cursor, "insert before the wheel cursor");
        let idx = if self.free != NIL {
            let idx = self.free;
            let n = &mut self.arena[idx as usize];
            self.free = n.next;
            n.time = time;
            n.gen = n.gen.wrapping_add(1);
            n.payload = Some(payload);
            idx
        } else {
            let idx = self.arena.len() as u32;
            self.arena.push(Node {
                time,
                gen: 1,
                bucket: FREE,
                prev: NIL,
                next: NIL,
                payload: Some(payload),
            });
            idx
        };
        let gen = self.arena[idx as usize].gen;
        let bucket = self.bucket_of(time);
        self.push_bucket(bucket, idx);
        self.live += 1;
        WheelHandle { index: idx, gen }
    }

    /// Cancel the event named by `handle`. Returns `true` iff it was still
    /// pending; stale, delivered, foreign, and double-cancelled handles are
    /// all rejected by the generation check. O(1).
    pub(crate) fn cancel(&mut self, handle: WheelHandle) -> bool {
        let Some(node) = self.arena.get(handle.index as usize) else {
            return false;
        };
        if node.gen != handle.gen || node.bucket == FREE {
            return false;
        }
        self.unlink(handle.index);
        self.release(handle.index);
        self.live -= 1;
        true
    }

    /// The first occupied bucket in delivery order: lowest level first,
    /// lowest slot within the level. By the placement invariant every
    /// occupied slot is at or after the cursor's slot on its level, and
    /// lower-level windows precede higher-level ones, so this bucket
    /// contains the globally earliest event.
    fn min_bucket(&self) -> Option<usize> {
        for level in 0..LEVELS {
            let word = self.occ[level];
            if word != 0 {
                let slot = word.trailing_zeros() as usize;
                debug_assert!(
                    slot as u64 >= (self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1),
                    "occupied slot behind the cursor"
                );
                return Some(level * SLOTS + slot);
            }
        }
        None
    }

    /// The earliest `(node index, time)` in `bucket`. For level-0 buckets
    /// every entry shares one timestamp, so the head is the answer; higher
    /// levels scan for the minimum time, first-in-list winning ties (list
    /// order is schedule order for equal times).
    fn min_in_bucket(&self, bucket: usize) -> (u32, u64) {
        let head = self.buckets[bucket].head;
        debug_assert!(head != NIL, "min_in_bucket on an empty bucket");
        if bucket < SLOTS {
            return (head, self.arena[head as usize].time);
        }
        let mut best = head;
        let mut best_time = self.arena[head as usize].time;
        let mut idx = self.arena[head as usize].next;
        while idx != NIL {
            let n = &self.arena[idx as usize];
            if n.time < best_time {
                best = idx;
                best_time = n.time;
            }
            idx = n.next;
        }
        (best, best_time)
    }

    /// Earliest pending timestamp, if any. Read-only.
    pub(crate) fn peek_min(&self) -> Option<u64> {
        self.min_bucket().map(|b| self.min_in_bucket(b).1)
    }

    /// Deliver the earliest event if it is due at or before `horizon`.
    /// On delivery the cursor advances to the event's time and the buckets
    /// holding that instant cascade down. A horizon miss mutates nothing.
    ///
    /// Order of operations matters for cost: the cursor advances (and
    /// cascades) *before* the unlink, which drops the due event — and its
    /// whole near-time cluster — into level 0, where this and subsequent
    /// deliveries are O(1) head removals instead of repeated scans of a
    /// populated high-level bucket.
    pub(crate) fn pop_min_until(&mut self, horizon: u64) -> Option<(u64, E)> {
        let time = self.peek_min()?;
        if time > horizon {
            return None;
        }
        self.advance(time);
        // Post-cascade, the level-0 slot at the cursor holds exactly the
        // events due at `time`, in schedule order.
        let slot = (time & (SLOTS as u64 - 1)) as usize;
        let idx = self.buckets[slot].head;
        debug_assert!(idx != NIL, "min event missing from its level-0 slot");
        debug_assert_eq!(self.arena[idx as usize].time, time);
        self.unlink(idx);
        let payload = self.arena[idx as usize].payload.take();
        self.release(idx);
        self.live -= 1;
        payload.map(|p| (time, p))
    }

    /// Move the cursor to `to`, cascading every bucket whose window the
    /// cursor just entered. Requires that no pending event is earlier than
    /// `to` (delivery pops the minimum first; fast-forward asserts it).
    pub(crate) fn advance(&mut self, to: u64) {
        let from = self.cursor;
        debug_assert!(to >= from, "wheel cursor moved backwards");
        self.cursor = to;
        let xor = from ^ to;
        if xor < SLOTS as u64 {
            // Same level-0 window: no placement changes.
            return;
        }
        let top = ((63 - xor.leading_zeros()) / SLOT_BITS) as usize;
        // Top-down: a level-L cascade may refill the level-(L-1) bucket
        // that the next iteration then disperses further.
        for level in (1..=top.min(LEVELS - 1)).rev() {
            let slot = ((to >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let bucket = level * SLOTS + slot;
            let mut idx = self.buckets[bucket].head;
            if idx == NIL {
                continue;
            }
            // Detach the whole list, then re-append head→tail so relative
            // order (and with it same-instant FIFO) is preserved.
            self.buckets[bucket] = Bucket::EMPTY;
            self.occ[level] &= !(1u64 << slot);
            while idx != NIL {
                let next = self.arena[idx as usize].next;
                let time = self.arena[idx as usize].time;
                debug_assert!(time >= to, "cascade found an event behind the cursor");
                let target = self.bucket_of(time);
                debug_assert!(target < bucket, "cascade must strictly descend");
                self.push_bucket(target, idx);
                idx = next;
            }
        }
    }
}

impl<E> std::fmt::Debug for TimerWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("cursor", &self.cursor)
            .field("live", &self.live)
            .field("arena_slots", &self.arena.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order_across_levels() {
        let mut w = TimerWheel::new();
        // One event per level boundary, inserted shuffled.
        let times = [5u64, 63, 64, 4095, 4096, 1 << 20, 1 << 30, 1 << 40, 1 << 50, 3];
        for &t in times.iter().rev() {
            w.insert(t, t);
        }
        let mut sorted = times;
        sorted.sort_unstable();
        for &expect in &sorted {
            assert_eq!(w.pop_min_until(u64::MAX), Some((expect, expect)));
        }
        assert_eq!(w.pop_min_until(u64::MAX), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn same_instant_is_fifo_through_cascades() {
        let mut w = TimerWheel::new();
        // All at one far-future instant: inserted at a high level, cascade
        // down together, must come out in insertion order.
        let t = (1 << 30) + 12345;
        for i in 0..100u32 {
            w.insert(t, i);
        }
        for i in 0..100u32 {
            assert_eq!(w.pop_min_until(u64::MAX), Some((t, i)));
        }
    }

    #[test]
    fn cancel_is_generation_checked() {
        let mut w = TimerWheel::new();
        let h1 = w.insert(100, 1u32);
        assert!(w.cancel(h1));
        assert!(!w.cancel(h1), "double cancel");
        let h2 = w.insert(100, 2u32);
        // h2 reuses h1's arena slot with a fresh generation.
        assert_eq!(h1.index, h2.index);
        assert_ne!(h1.gen, h2.gen);
        assert!(!w.cancel(h1), "stale handle must miss the reused slot");
        assert_eq!(w.pop_min_until(u64::MAX), Some((100, 2)));
        assert!(!w.cancel(h2), "delivered handle");
    }

    #[test]
    fn horizon_miss_mutates_nothing() {
        let mut w = TimerWheel::new();
        w.insert(1 << 20, 7u32);
        assert_eq!(w.pop_min_until(100), None);
        assert_eq!(w.cursor(), 0, "failed pop must not advance the cursor");
        assert_eq!(w.peek_min(), Some(1 << 20));
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut w = TimerWheel::new();
        for round in 0..1000u64 {
            let h = w.insert(1_000_000 + round, round);
            assert!(w.cancel(h));
        }
        assert_eq!(w.arena_slots(), 1, "churn must recycle one slot");
        assert_eq!(w.len(), 0);
    }
}
