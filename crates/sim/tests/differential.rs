//! Differential oracle harness for the timer-wheel engine.
//!
//! The wheel in `crates/sim/src/wheel.rs` replaced the original binary-heap
//! queue; the heap survives as [`ReferenceQueue`], whose `(time, seq)`
//! min-order *is* the delivery specification. The property here drives
//! arbitrary interleaved schedule / same-instant burst / cancel / pop /
//! `pop_until` / peek / `fast_forward` sequences against both queues in
//! lockstep and asserts identical `(time, payload)` streams (payloads are
//! schedule-ordinal, so a stream match pins the seq tie-break too), plus
//! identical clocks, pending counts, and idle flags after every operation.
//!
//! Also here: the two stress shapes the engine must survive — the fig12
//! ~350k same-instant TCP cascade without a spurious `Livelock`, and a
//! long cancellation churn with bounded arena memory (the wheel free-lists
//! slots instead of accumulating tombstones).

use domino_sim::engine::{DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW};
use domino_sim::oracle::RefHandle;
use domino_sim::{Engine, EventHandle, ReferenceQueue, SimDuration, SimTime};
use domino_testkit::prop;

/// Delay shapes spanning every wheel level: same-instant, level-0
/// neighbours, the level-0/1 and 1/2 boundaries, protocol-scale (9 µs slot,
/// 1 ms window), and far-future (level 5+ cascades).
const DELAYS: [u64; 8] = [0, 1, 63, 64, 4_095, 9_000, 1_000_000, 1 << 34];

/// One lockstep run of the wheel engine against the heap oracle.
fn drive(g: &mut prop::Gen) {
    let mut wheel: Engine<u32> = Engine::new();
    let mut oracle: ReferenceQueue<u32> = ReferenceQueue::new();
    let mut handles: Vec<(EventHandle, RefHandle)> = Vec::new();
    let mut next_payload = 0u32;
    let ops = g.usize(1, 120);
    for _ in 0..ops {
        match g.usize(0, 9) {
            0..=3 => {
                // Schedule at a level-targeted offset from now.
                let base = *g.pick(&DELAYS);
                let jitter = g.u64(0, 64);
                let at = SimTime::from_nanos(wheel.now().as_nanos() + base + jitter);
                let p = next_payload;
                next_payload += 1;
                handles.push((wheel.schedule_at(at, p), oracle.schedule_at(at, p)));
            }
            4 => {
                // Same-instant burst: FIFO tie-break territory.
                let n = g.usize(1, 8);
                for _ in 0..n {
                    let p = next_payload;
                    next_payload += 1;
                    handles.push((wheel.schedule_now(p), oracle.schedule_now(p)));
                }
            }
            5 | 6 => {
                // Cancel an arbitrary recorded handle — possibly already
                // delivered, cancelled, or stale. The verdicts must agree.
                if !handles.is_empty() {
                    let i = g.usize(0, handles.len() - 1);
                    let (hw, ho) = handles[i];
                    assert_eq!(wheel.cancel(hw), oracle.cancel(ho), "cancel disagreement");
                }
            }
            7 => {
                assert_eq!(wheel.pop(), oracle.pop());
            }
            8 => {
                // Horizon-bounded pop, including past-horizon misses that
                // must leave both clocks untouched.
                let dt = g.u64(0, 2_000_000);
                let h = SimTime::from_nanos(wheel.now().as_nanos().saturating_add(dt));
                assert_eq!(wheel.pop_until(h), oracle.pop_until(h));
            }
            _ => {
                // Peek, then fast-forward somewhere legal (at most to the
                // next pending event), exercising delivery-free cascades.
                let pw = wheel.peek_time();
                assert_eq!(pw, oracle.peek_time());
                let dt = g.u64(0, 100_000);
                let mut target = wheel.now().as_nanos().saturating_add(dt);
                if let Some(p) = pw {
                    target = target.min(p.as_nanos());
                }
                wheel.fast_forward(SimTime::from_nanos(target));
                oracle.fast_forward(SimTime::from_nanos(target));
            }
        }
        assert_eq!(wheel.now(), oracle.now());
        assert_eq!(wheel.pending(), oracle.pending());
        assert_eq!(wheel.is_idle(), oracle.is_idle());
    }
    // Drain both queues: the complete remaining streams must agree.
    loop {
        let a = wheel.pop();
        assert_eq!(a, oracle.pop());
        if a.is_none() {
            break;
        }
    }
    assert_eq!(wheel.events_processed(), oracle.events_processed());
    assert!(wheel.is_idle() && oracle.is_idle());
}

#[test]
fn wheel_matches_heap_oracle() {
    prop::check("wheel matches (time, seq) heap order", drive);
}

/// Pinned choice sequences: the minimal interesting shapes, replayed
/// forever. (No shrunk counterexample has been found; if one ever is, its
/// `prop::replay` line from the failure message belongs here.)
#[test]
fn wheel_matches_heap_oracle_pins() {
    // Everything minimal: one op, all choices zero.
    prop::replay(&[], drive);
    // Far-future schedule (level-5 placement) then an unbounded pop: one
    // event cascading down the whole wheel.
    prop::replay(&[1, 0, 7, 0, 7], drive);
    // Maximal same-instant burst, then one pop; the drain checks the rest
    // of the FIFO order.
    prop::replay(&[1, 4, 7, 7], drive);
    // Schedule at now, cancel it, pop into the empty queue.
    prop::replay(&[2, 0, 0, 0, 5, 0, 7], drive);
}

/// fig12's legitimate burst: DOMINO under heavy TCP on T(10,2) delivers
/// ~350k events at one instant (a batch boundary). The default liveness
/// budget must clear it with no spurious `Livelock`, and the FIFO order
/// must hold through the whole cascade.
#[test]
fn same_instant_cascade_350k_no_spurious_livelock() {
    let mut e: Engine<u32> = Engine::new();
    e.set_liveness(DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW);
    let t = SimTime::from_millis(5);
    e.schedule_at(t, 0);
    let mut delivered = 0u32;
    let horizon = SimTime::from_secs(1);
    loop {
        match e.pop_until_checked(horizon) {
            Ok(Some((at, n))) => {
                assert_eq!(at, t, "cascade must stay at one instant");
                assert_eq!(n, delivered, "same-instant FIFO order broke");
                delivered += 1;
                if delivered < 350_000 {
                    e.schedule_now(delivered);
                }
            }
            Ok(None) => break,
            Err(lv) => panic!("spurious livelock on a legitimate burst: {lv}"),
        }
    }
    assert_eq!(delivered, 350_000);
    assert_eq!(e.events_processed(), 350_000);
}

/// Long-run schedule/cancel churn: 200k cycles must not grow the engine.
/// The retired heap kept every cancelled entry as a tombstone until its
/// timestamp drained; the wheel's free list caps the arena at the peak
/// number of *simultaneously* pending events — single digits here.
#[test]
fn cancellation_churn_memory_is_bounded() {
    let mut e: Engine<u64> = Engine::new();
    for round in 0..200_000u64 {
        // A far-future timer armed and immediately disarmed (the dominant
        // MAC pattern: ACK timeouts that almost always get cancelled).
        let h = e.schedule_at(SimTime::from_nanos(10_000_000 + round * 100), round);
        assert!(e.cancel(h));
        // Occasional real traffic so the clock moves while churning.
        if round % 1_000 == 0 {
            e.schedule_in(SimDuration::from_nanos(50), round);
            assert!(e.pop().is_some());
        }
    }
    assert!(e.is_idle());
    assert!(
        e.arena_slots() <= 8,
        "arena grew under churn: {} slots for ≤2 concurrent events",
        e.arena_slots()
    );
}
