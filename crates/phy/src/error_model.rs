//! SINR → packet-error-rate model.
//!
//! The paper's large-scale evaluation runs on ns-3 with its validated OFDM
//! error model (it cites Pei & Henderson's validation report). We use the
//! same structure: a per-modulation bit-error-rate waterfall as a function
//! of effective SINR, and `PER = 1 - (1 - BER)^bits`. Rate-dependent
//! offsets are calibrated so the 50 %-PER point of a 512-byte frame lands
//! where the ns-3 validation places it (≈4 dB for 6 Mb/s, ≈7 dB for
//! 12 Mb/s, ≈12 dB for 24 Mb/s, ≈20 dB for 54 Mb/s).

/// 802.11g OFDM data rates modeled by the reproduction. The paper's
/// evaluation fixes the PHY rate to 12 Mb/s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataRate {
    /// BPSK, rate-1/2 coding.
    Mbps6,
    /// QPSK, rate-1/2 coding (the paper's evaluation rate).
    Mbps12,
    /// 16-QAM, rate-1/2 coding.
    Mbps24,
    /// 64-QAM, rate-3/4 coding.
    Mbps54,
}

impl DataRate {
    /// Bits per second.
    pub fn bits_per_second(self) -> f64 {
        match self {
            DataRate::Mbps6 => 6e6,
            DataRate::Mbps12 => 12e6,
            DataRate::Mbps24 => 24e6,
            DataRate::Mbps54 => 54e6,
        }
    }

    /// Airtime of `bytes` of payload at this rate, in nanoseconds
    /// (excluding the PLCP preamble/header, which
    /// `domino-mac::timing` accounts for separately).
    pub fn airtime_ns(self, bytes: usize) -> u64 {
        let bits = bytes as f64 * 8.0;
        (bits / self.bits_per_second() * 1e9).round() as u64
    }

    /// Calibration offset subtracted from the SINR before the BER
    /// waterfall (higher-order modulations need more SINR).
    fn offset_db(self) -> f64 {
        match self {
            DataRate::Mbps6 => -4.0,
            DataRate::Mbps12 => -1.0,
            DataRate::Mbps24 => 4.0,
            DataRate::Mbps54 => 12.0,
        }
    }

    /// Effective coded bit-error rate at the given SINR.
    pub fn ber(self, sinr_db: f64) -> f64 {
        if !sinr_db.is_finite() {
            return if sinr_db > 0.0 { 0.0 } else { 0.5 };
        }
        let eff = 10f64.powf((sinr_db - self.offset_db()) / 10.0);
        0.5 * erfc(eff.sqrt())
    }

    /// Packet error rate for a frame of `bits` coded bits at `sinr_db`.
    pub fn per(self, sinr_db: f64, bits: usize) -> f64 {
        let ber = self.ber(sinr_db);
        if ber <= 0.0 {
            0.0
        } else if ber >= 0.5 {
            1.0
        } else {
            1.0 - (1.0 - ber).powi(bits as i32)
        }
    }

    /// The SINR (dB) above which a 512-byte frame gets through with at
    /// least 90 % probability — the "capture threshold" the conflict-graph
    /// builder uses.
    pub fn capture_sinr_db(self) -> f64 {
        // Bisect per(snr, 4096) = 0.1.
        let bits = 4096;
        let (mut lo, mut hi) = (-10.0, 40.0);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.per(mid, bits) > 0.1 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |err| ≤
/// 1.5e-7), extended to negative arguments by symmetry.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
    }

    #[test]
    fn airtime_512_bytes_at_12mbps() {
        // 4096 bits / 12 Mb/s = 341.33 us.
        let ns = DataRate::Mbps12.airtime_ns(512);
        assert_eq!(ns, 341_333);
    }

    #[test]
    fn per_is_monotone_in_sinr() {
        for rate in [DataRate::Mbps6, DataRate::Mbps12, DataRate::Mbps24, DataRate::Mbps54] {
            let mut prev = 1.1;
            for snr in -5..30 {
                let p = rate.per(snr as f64, 4096);
                assert!(p <= prev + 1e-12, "{rate:?} at {snr} dB");
                prev = p;
            }
        }
    }

    #[test]
    fn fifty_percent_points_match_calibration() {
        let expect = [
            (DataRate::Mbps6, 4.0),
            (DataRate::Mbps12, 7.0),
            (DataRate::Mbps24, 12.0),
            (DataRate::Mbps54, 20.0),
        ];
        for (rate, target) in expect {
            // Find the 50% crossing by bisection.
            let (mut lo, mut hi) = (-10.0, 40.0);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if rate.per(mid, 4096) > 0.5 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let cross = 0.5 * (lo + hi);
            assert!(
                (cross - target).abs() < 0.5,
                "{rate:?}: 50% PER at {cross:.2} dB, expected ~{target}"
            );
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(DataRate::Mbps12.per(f64::NEG_INFINITY, 100), 1.0);
        assert_eq!(DataRate::Mbps12.per(f64::INFINITY, 100), 0.0);
        assert!(DataRate::Mbps12.per(40.0, 4096) < 1e-9);
        assert!(DataRate::Mbps12.per(-5.0, 4096) > 0.999);
    }

    #[test]
    fn capture_threshold_ordering() {
        let t6 = DataRate::Mbps6.capture_sinr_db();
        let t12 = DataRate::Mbps12.capture_sinr_db();
        let t54 = DataRate::Mbps54.capture_sinr_db();
        assert!(t6 < t12 && t12 < t54);
        // 12 Mb/s threshold sits a little above its 50% point.
        assert!((t12 - 8.2).abs() < 1.0, "t12={t12}");
    }

    #[test]
    fn more_bits_more_errors() {
        let short = DataRate::Mbps12.per(9.0, 500);
        let long = DataRate::Mbps12.per(9.0, 4096);
        assert!(long > short);
    }
}
