//! A minimal complex-number type for baseband sample processing.
//!
//! The offline dependency set has no `num-complex`, so we carry our own.
//! Only the operations the OFDM/correlator code needs are implemented.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Unit phasor `e^{i·theta}`.
    #[inline]
    pub fn from_phase(theta: f64) -> Complex {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Construct from polar form.
    #[inline]
    pub fn from_polar(magnitude: f64, theta: f64) -> Complex {
        Complex { re: magnitude * theta.cos(), im: magnitude * theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude (cheaper than [`Complex::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Complex {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert!(close(p.re, 5.0) && close(p.im, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        let p = Complex::I * Complex::I;
        assert!(close(p.re, -1.0) && close(p.im, 0.0));
    }

    #[test]
    fn conjugate_product_is_norm() {
        let a = Complex::new(3.0, 4.0);
        let p = a * a.conj();
        assert!(close(p.re, 25.0) && close(p.im, 0.0));
        assert!(close(a.abs(), 5.0));
    }

    #[test]
    fn polar_round_trip() {
        let a = Complex::from_polar(2.0, PI / 3.0);
        assert!(close(a.abs(), 2.0));
        assert!(close(a.arg(), PI / 3.0));
    }

    #[test]
    fn phase_rotation_preserves_magnitude() {
        let a = Complex::new(1.5, -0.5);
        let r = a * Complex::from_phase(1.234);
        assert!((r.abs() - a.abs()).abs() < 1e-12);
    }

    #[test]
    fn sum_iterator() {
        let s: Complex = (0..4).map(|k| Complex::from_phase(PI / 2.0 * k as f64)).sum();
        // 1 + i - 1 - i = 0
        assert!(s.abs() < 1e-12);
    }
}
