//! Gold-code node signatures.
//!
//! DOMINO assigns every wireless node a signature drawn from a family of
//! Gold codes of length 127 (paper §3.2): 129 codes generated from a
//! preferred pair of degree-7 m-sequences. Gold codes have three-valued
//! cross-correlation {-1, -17, +15}, which is what lets a receiver detect
//! its own signature underneath other signatures and packet interference.

/// Length of the signature codes used by DOMINO (2^7 - 1).
pub const CODE_LENGTH: usize = 127;

/// Number of codes in the degree-7 Gold family (2 m-sequences + 127 sums).
pub const FAMILY_SIZE: usize = 129;

/// Peak absolute cross-correlation for a degree-7 Gold family: t(7) = 17.
pub const MAX_CROSS_CORRELATION: i32 = 17;

/// A binary spreading code in ±1 chip representation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Code {
    chips: Vec<i8>,
}

impl Code {
    /// The chips of the code, each +1 or -1.
    #[inline]
    pub fn chips(&self) -> &[i8] {
        &self.chips
    }

    /// Code length in chips.
    #[inline]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// True if the code has no chips (never the case for generated codes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Periodic (circular) cross-correlation with `other` at the given chip
    /// `shift`: `Σ_t self[t] · other[(t + shift) mod L]`.
    pub fn periodic_correlation(&self, other: &Code, shift: usize) -> i32 {
        assert_eq!(self.len(), other.len(), "correlating codes of unequal length");
        let n = self.len();
        let mut acc = 0i32;
        for t in 0..n {
            acc += i32::from(self.chips[t]) * i32::from(other.chips[(t + shift) % n]);
        }
        acc
    }

    /// Peak periodic autocorrelation sidelobe (max |corr| over non-zero
    /// shifts).
    pub fn max_autocorrelation_sidelobe(&self) -> i32 {
        (1..self.len())
            .map(|s| self.periodic_correlation(self, s).abs())
            .max()
            .unwrap_or(0)
    }
}

/// Generate a maximal-length sequence from a Fibonacci LFSR.
///
/// `taps` lists the feedback tap positions (1-based, e.g. `[7, 3]` for
/// x^7 + x^3 + 1). `degree` is the register length; the output has period
/// 2^degree - 1. The register is seeded with all ones.
pub fn m_sequence(degree: u32, taps: &[u32]) -> Code {
    assert!((2..=16).contains(&degree), "unsupported LFSR degree {degree}");
    assert!(taps.contains(&degree), "tap list must include the degree itself");
    let period = (1usize << degree) - 1;
    let mut state: u32 = (1 << degree) - 1; // all ones
    let mut chips = Vec::with_capacity(period);
    for _ in 0..period {
        let out = state & 1;
        chips.push(if out == 1 { 1 } else { -1 });
        let fb = taps.iter().fold(0u32, |acc, &t| acc ^ ((state >> (degree - t)) & 1));
        state = (state >> 1) | (fb << (degree - 1));
    }
    Code { chips }
}

/// XOR (product in ±1 form) of two equal-length codes, with `b` circularly
/// shifted by `shift` chips.
fn product_shifted(a: &Code, b: &Code, shift: usize) -> Code {
    let n = a.len();
    let chips = (0..n)
        .map(|t| a.chips[t] * b.chips[(t + shift) % n])
        .collect();
    Code { chips }
}

/// The Gold-code family used by DOMINO.
///
/// The default is the degree-7 family (129 codes of length 127) the
/// paper deploys; §5 discusses scaling past 127 nodes per collision
/// domain with longer codes, which [`GoldFamily::degree9`] provides
/// (513 codes of length 511, 25.55 µs per signature at 20 Mchip/s).
#[derive(Debug)]
pub struct GoldFamily {
    codes: Vec<Code>,
}

impl GoldFamily {
    /// Construct the standard degree-7 family (129 codes of length 127).
    pub fn degree7() -> GoldFamily {
        Self::from_preferred_pair(7, &[7, 3], &[7, 3, 2, 1])
    }

    /// Construct the degree-9 family the paper's §5 proposes for denser
    /// collision domains: 513 codes of length 511, with peak
    /// cross-correlation t(9) = 33 (still 24 dB below the
    /// autocorrelation peak).
    pub fn degree9() -> GoldFamily {
        Self::from_preferred_pair(9, &[9, 4], &[9, 6, 4, 3])
    }

    /// Build a family from a preferred pair of m-sequences.
    fn from_preferred_pair(degree: u32, taps_u: &[u32], taps_v: &[u32]) -> GoldFamily {
        let u = m_sequence(degree, taps_u);
        let v = m_sequence(degree, taps_v);
        let period = u.len();
        let mut codes = Vec::with_capacity(period + 2);
        codes.push(u.clone());
        codes.push(v.clone());
        for shift in 0..period {
            codes.push(product_shifted(&u, &v, shift));
        }
        GoldFamily { codes }
    }

    /// Number of codes in the family.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the family is empty (never for [`GoldFamily::degree7`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code at `index`; panics if out of range.
    #[inline]
    pub fn code(&self, index: usize) -> &Code {
        &self.codes[index]
    }

    /// Iterate over all codes.
    pub fn iter(&self) -> impl Iterator<Item = &Code> {
        self.codes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_sequence_has_full_period() {
        let c = m_sequence(7, &[7, 3]);
        assert_eq!(c.len(), 127);
        // Balance property: one more +1 than -1 (or vice versa).
        let sum: i32 = c.chips().iter().map(|&x| i32::from(x)).sum();
        assert_eq!(sum.abs(), 1);
    }

    #[test]
    fn m_sequence_autocorrelation_is_two_valued() {
        let c = m_sequence(7, &[7, 3]);
        assert_eq!(c.periodic_correlation(&c, 0), 127);
        for s in 1..127 {
            assert_eq!(c.periodic_correlation(&c, s), -1, "shift {s}");
        }
    }

    #[test]
    fn preferred_pair_cross_correlation_is_three_valued() {
        let u = m_sequence(7, &[7, 3]);
        let v = m_sequence(7, &[7, 3, 2, 1]);
        for s in 0..127 {
            let c = u.periodic_correlation(&v, s);
            assert!(
                c == -1 || c == -17 || c == 15,
                "cross-correlation {c} at shift {s} not in {{-1, -17, 15}}"
            );
        }
    }

    #[test]
    fn family_has_129_distinct_codes() {
        let fam = GoldFamily::degree7();
        assert_eq!(fam.len(), FAMILY_SIZE);
        for i in 0..fam.len() {
            for j in (i + 1)..fam.len() {
                assert_ne!(fam.code(i), fam.code(j), "codes {i} and {j} identical");
            }
        }
    }

    #[test]
    fn family_cross_correlation_bounded() {
        let fam = GoldFamily::degree7();
        // Spot-check a subset of pairs at all shifts (full scan is O(129² ·
        // 127²) and too slow for a unit test).
        for i in (0..fam.len()).step_by(17) {
            for j in (0..fam.len()).step_by(13) {
                if i == j {
                    continue;
                }
                for s in (0..127).step_by(7) {
                    let c = fam.code(i).periodic_correlation(fam.code(j), s);
                    assert!(
                        c.abs() <= MAX_CROSS_CORRELATION,
                        "|corr|={} for codes ({i},{j}) shift {s}",
                        c.abs()
                    );
                }
            }
        }
    }

    #[test]
    fn gold_code_autocorrelation_sidelobes_bounded() {
        let fam = GoldFamily::degree7();
        for i in [2, 10, 64, 128] {
            let peak = fam.code(i).max_autocorrelation_sidelobe();
            assert!(peak <= MAX_CROSS_CORRELATION, "code {i}: sidelobe {peak}");
        }
    }

    #[test]
    fn chips_are_plus_minus_one() {
        let fam = GoldFamily::degree7();
        for code in fam.iter() {
            assert!(code.chips().iter().all(|&c| c == 1 || c == -1));
        }
    }

    #[test]
    #[should_panic(expected = "tap list")]
    fn taps_must_include_degree() {
        let _ = m_sequence(7, &[3, 2]);
    }

    #[test]
    fn degree9_family_supports_511_nodes() {
        let fam = GoldFamily::degree9();
        assert_eq!(fam.len(), 513);
        assert_eq!(fam.code(0).len(), 511);
        // t(9) = 2^5 + 1 = 33 for the preferred pair.
        let u = fam.code(0);
        let v = fam.code(1);
        for s in (0..511).step_by(17) {
            let c = u.periodic_correlation(v, s);
            assert!(
                c == -1 || c == -33 || c == 31,
                "degree-9 cross-correlation {c} at shift {s}"
            );
        }
    }

    #[test]
    fn degree9_gold_sidelobes_bounded() {
        let fam = GoldFamily::degree9();
        for i in [2usize, 100, 512] {
            // Spot-check shifts; a full scan is too slow for a unit test.
            for s in (1..511).step_by(31) {
                let c = fam.code(i).periodic_correlation(fam.code(i), s);
                assert!(c.abs() <= 33, "sidelobe {c} for code {i} shift {s}");
            }
        }
    }
}
