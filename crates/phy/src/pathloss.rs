//! Large-scale propagation: log-distance path loss with shadowing.
//!
//! Used for two purposes in the reproduction:
//! * generating the synthetic 40-node RSS trace that replaces the paper's
//!   two-building measurement campaign (`domino-topology::trace`), and
//! * the Fig 14 random-placement experiment, where the paper itself
//!   switches from the trace to "the default path loss model in ns3".
//!
//! The model is ns-3's `LogDistancePropagationLossModel` shape:
//! `PL(d) = PL(d0) + 10·n·log10(d/d0) (+ shadowing)`, with a 2.4 GHz Friis
//! reference loss at 1 m.

use crate::units::{Db, Dbm};

/// Log-distance path-loss model.
#[derive(Clone, Copy, Debug)]
pub struct LogDistanceModel {
    /// Reference distance in meters.
    pub reference_distance_m: f64,
    /// Path loss at the reference distance.
    pub reference_loss: Db,
    /// Path-loss exponent.
    pub exponent: f64,
}

impl LogDistanceModel {
    /// ns-3's default: exponent 3.0, 46.68 dB at 1 m (Friis at 2.4 GHz).
    pub fn ns3_default() -> LogDistanceModel {
        LogDistanceModel {
            reference_distance_m: 1.0,
            reference_loss: Db(46.68),
            exponent: 3.0,
        }
    }

    /// Indoor office variant used for the synthetic trace: slightly
    /// steeper decay to create distinct collision domains within a
    /// building.
    pub fn indoor() -> LogDistanceModel {
        LogDistanceModel {
            reference_distance_m: 1.0,
            reference_loss: Db(46.68),
            exponent: 3.3,
        }
    }

    /// Path loss at distance `d_m` meters (clamped to the reference
    /// distance, as in ns-3).
    pub fn loss(&self, d_m: f64) -> Db {
        assert!(d_m.is_finite() && d_m >= 0.0, "invalid distance {d_m}");
        let d = d_m.max(self.reference_distance_m);
        Db(self.reference_loss.value()
            + 10.0 * self.exponent * (d / self.reference_distance_m).log10())
    }

    /// Received signal strength for a transmit power and distance.
    pub fn rss(&self, tx_power: Dbm, d_m: f64) -> Dbm {
        tx_power - self.loss(d_m)
    }
}

/// Standard transmit power used throughout the reproduction (typical
/// enterprise AP/client setting).
pub fn default_tx_power() -> Dbm {
    Dbm(18.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_with_distance() {
        let m = LogDistanceModel::ns3_default();
        let mut prev = m.loss(1.0).value();
        for d in [2.0, 5.0, 10.0, 50.0, 200.0] {
            let l = m.loss(d).value();
            assert!(l > prev, "loss not monotone at {d} m");
            prev = l;
        }
    }

    #[test]
    fn reference_point() {
        let m = LogDistanceModel::ns3_default();
        assert!((m.loss(1.0).value() - 46.68).abs() < 1e-9);
        // 10x distance at exponent 3 = +30 dB.
        assert!((m.loss(10.0).value() - 76.68).abs() < 1e-9);
    }

    #[test]
    fn below_reference_clamps() {
        let m = LogDistanceModel::ns3_default();
        assert_eq!(m.loss(0.1).value(), m.loss(1.0).value());
        assert_eq!(m.loss(0.0).value(), m.loss(1.0).value());
    }

    #[test]
    fn rss_at_typical_office_range() {
        let m = LogDistanceModel::ns3_default();
        let rss = m.rss(default_tx_power(), 30.0);
        // 18 - (46.68 + 30*log10(30)) = 18 - 90.99 ≈ -73 dBm: a healthy
        // in-range office link.
        assert!((rss.value() + 73.0).abs() < 0.1, "rss={rss}");
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn negative_distance_panics() {
        let _ = LogDistanceModel::ns3_default().loss(-1.0);
    }
}
