//! Sample-level signature transmission and detection.
//!
//! In DOMINO a trigger is a burst of up to four summed Gold-code signatures
//! transmitted back-to-back with the data exchange (paper §3.2, Fig 8). The
//! receiver runs a correlator for its own signature continuously; detection
//! must work *without* decoding, under interference from other senders'
//! bursts and under noise.
//!
//! This module synthesizes complex-baseband bursts (BPSK chips at 20 Mchip/s,
//! one sample per chip, 6.35 µs per 127-chip signature) and implements the
//! receiver: an energy-normalized correlator with successive interference
//! cancellation (SIC). The Fig 9 experiment — detection ratio vs number of
//! combined signatures for five sender setups — is reproduced by
//! [`detection_experiment`]; the network simulator's calibrated trigger
//! model (`domino-medium`) is justified by these results.

use crate::complex::Complex;
use crate::gold::{Code, GoldFamily, CODE_LENGTH};
use domino_sim::SimRng;

/// Duration of one 127-chip signature at 20 Mchip/s, in nanoseconds
/// (6.35 µs, paper §3.2).
pub const SIGNATURE_DURATION_NS: u64 = 6_350;

/// Maximum number of signatures DOMINO combines in one burst (paper §3.2,
/// conclusion of the Fig 9 experiment).
pub const MAX_COMBINED: usize = 4;

/// One physical transmitter's contribution to a signature burst.
#[derive(Clone, Debug)]
pub struct SenderSpec {
    /// Indices into the [`GoldFamily`] of the codes this sender sums.
    pub code_indices: Vec<usize>,
    /// Arrival offset at the receiver, in chips (propagation + turnaround
    /// skew). Must stay small relative to the code length.
    pub delay_chips: usize,
    /// Carrier phase of this sender as seen by the receiver, radians.
    pub phase: f64,
    /// Received amplitude relative to the nominal sender (linear, 1.0 =
    /// equal RSS).
    pub amplitude: f64,
}

impl SenderSpec {
    /// A sender with the given codes, ideal timing/phase and unit gain.
    pub fn simple(code_indices: Vec<usize>) -> SenderSpec {
        SenderSpec { code_indices, delay_chips: 0, phase: 0.0, amplitude: 1.0 }
    }
}

/// Synthesize the received complex-baseband samples of a signature burst.
///
/// Each sender transmits the *sum* of its codes with total transmit power
/// held constant (per-code amplitude `1/sqrt(k)`), as a hardware
/// transmitter with a fixed power amplifier would. White Gaussian noise
/// with per-sample standard deviation `noise_sigma` (per real/imaginary
/// component) is added. The returned window is long enough to contain every
/// sender's delayed burst.
pub fn synthesize_burst(
    family: &GoldFamily,
    senders: &[SenderSpec],
    noise_sigma: f64,
    rng: &mut SimRng,
) -> Vec<Complex> {
    let max_delay = senders.iter().map(|s| s.delay_chips).max().unwrap_or(0);
    let len = CODE_LENGTH + max_delay;
    let mut samples = vec![Complex::ZERO; len];
    for sender in senders {
        assert!(!sender.code_indices.is_empty(), "sender with no codes");
        let per_code = sender.amplitude / (sender.code_indices.len() as f64).sqrt();
        let phasor = Complex::from_polar(per_code, sender.phase);
        for &ci in &sender.code_indices {
            let code = family.code(ci);
            for (t, &chip) in code.chips().iter().enumerate() {
                // lint: allow(D010) samples sized CODE_LENGTH + max(delay_chips) above; t < CODE_LENGTH keeps the sum in bounds
                samples[t + sender.delay_chips] += phasor * f64::from(chip);
            }
        }
    }
    for s in samples.iter_mut() {
        *s += Complex::new(
            rng.normal(0.0, noise_sigma),
            rng.normal(0.0, noise_sigma),
        );
    }
    samples
}

/// Receiver-side signature detector.
///
/// Detection metric: `|Σ_t r[t+lag] · c[t]| / (L · a_ref)`, maximized over
/// a small lag window, where `a_ref` is the *expected* per-chip amplitude
/// of the triggering transmitter. DOMINO nodes can reference-normalize
/// because the central interference map tells every node the RSS of its
/// designated triggers (paper §3). A perfectly received lone signature
/// scores ≈ 1; a signature sharing a fixed-power burst with `k-1` others
/// scores ≈ `1/sqrt(k)`.
///
/// Successive interference cancellation re-scores the remaining candidates
/// after subtracting each detection. The combination is what makes bursts
/// of up to 4 signatures reliably separable (Fig 9) while larger bursts
/// degrade: at the default threshold, `1/sqrt(k)` clears it comfortably
/// through k = 4 and sinks below it as k grows.
#[derive(Clone, Debug)]
pub struct Correlator {
    /// Reference-normalized correlation detection threshold.
    pub threshold: f64,
    /// Maximum SIC iterations (0 disables cancellation).
    pub sic_rounds: usize,
    /// Largest lag (in chips) the receiver searches.
    pub max_lag: usize,
    /// Expected per-chip amplitude of the triggering transmitter.
    pub reference_amplitude: f64,
}

impl Default for Correlator {
    fn default() -> Correlator {
        Correlator { threshold: 0.38, sic_rounds: 8, max_lag: 8, reference_amplitude: 1.0 }
    }
}

/// Result of correlating one candidate code against a sample window.
#[derive(Clone, Copy, Debug)]
pub struct CorrelationPeak {
    /// Best normalized metric over the lag window.
    pub metric: f64,
    /// Lag (chips) at which the peak occurred.
    pub lag: usize,
    /// Complex correlation value at the peak (for cancellation).
    pub value: Complex,
}

fn correlate_at(samples: &[Complex], code: &Code, lag: usize) -> Complex {
    code.chips()
        .iter()
        .enumerate()
        .map(|(t, &chip)| samples[t + lag] * f64::from(chip))
        .sum()
}

impl Correlator {
    /// Peak reference-normalized correlation of `code` against `samples`.
    pub fn peak(&self, samples: &[Complex], code: &Code) -> CorrelationPeak {
        let l = code.len();
        assert!(samples.len() >= l, "sample window shorter than code");
        let max_lag = self.max_lag.min(samples.len() - l);
        let norm = l as f64 * self.reference_amplitude.max(1e-12);
        let mut best = CorrelationPeak { metric: -1.0, lag: 0, value: Complex::ZERO };
        for lag in 0..=max_lag {
            let v = correlate_at(samples, code, lag);
            let m = v.abs() / norm;
            if m > best.metric {
                best = CorrelationPeak { metric: m, lag, value: v };
            }
        }
        best
    }

    /// Detect which of `candidates` (indices into `family`) are present in
    /// `samples`, using SIC. Returns the detected indices in order of
    /// detection (strongest first).
    pub fn detect(
        &self,
        family: &GoldFamily,
        samples: &[Complex],
        candidates: &[usize],
    ) -> Vec<usize> {
        let mut residual = samples.to_vec();
        let mut remaining: Vec<usize> = candidates.to_vec();
        let mut detected = Vec::new();
        let rounds = self.sic_rounds.max(1);
        for _ in 0..rounds {
            if remaining.is_empty() {
                break;
            }
            // Strongest remaining candidate.
            let (pos, peak) = match remaining
                .iter()
                .enumerate()
                .map(|(i, &ci)| (i, self.peak(&residual, family.code(ci))))
                .max_by(|a, b| a.1.metric.total_cmp(&b.1.metric))
            {
                Some(x) => x,
                None => break,
            };
            if peak.metric < self.threshold {
                break;
            }
            let ci = remaining.swap_remove(pos);
            detected.push(ci);
            if self.sic_rounds > 0 {
                // Subtract the estimated contribution: amplitude and phase
                // from the correlation value, chip pattern from the code.
                let est = peak.value / CODE_LENGTH as f64;
                let code = family.code(ci);
                for (t, &chip) in code.chips().iter().enumerate() {
                    // lint: allow(D010) peak.lag <= samples.len() - code.len() by the max_lag clamp in `peak`; sum stays in bounds
                    residual[t + peak.lag] -= est * f64::from(chip);
                }
            }
        }
        detected
    }

    /// Convenience: does `samples` contain `code_index`? (Named to avoid
    /// shadowing the ubiquitous `slice::contains` in call-graph analyses.)
    pub fn contains_code(
        &self,
        family: &GoldFamily,
        samples: &[Complex],
        code_index: usize,
        all_candidates: &[usize],
    ) -> bool {
        self.detect(family, samples, all_candidates).contains(&code_index)
    }
}

/// The five sender setups of the paper's Fig 9 experiment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fig9Setup {
    /// One transmitter, one receiver.
    OneSender,
    /// Two transmitters with similar RSS, both sending the same signatures.
    TwoSendersSame,
    /// Two transmitters with similar RSS, sending different signatures.
    TwoSendersDifferent,
    /// Three transmitters, same signatures.
    ThreeSendersSame,
    /// Three transmitters, different signatures.
    ThreeSendersDifferent,
}

impl Fig9Setup {
    /// All five setups, in the order the paper plots them.
    pub const ALL: [Fig9Setup; 5] = [
        Fig9Setup::OneSender,
        Fig9Setup::TwoSendersSame,
        Fig9Setup::TwoSendersDifferent,
        Fig9Setup::ThreeSendersSame,
        Fig9Setup::ThreeSendersDifferent,
    ];

    /// Number of transmitters in this setup.
    pub fn sender_count(self) -> usize {
        match self {
            Fig9Setup::OneSender => 1,
            Fig9Setup::TwoSendersSame | Fig9Setup::TwoSendersDifferent => 2,
            Fig9Setup::ThreeSendersSame | Fig9Setup::ThreeSendersDifferent => 3,
        }
    }

    /// Whether all transmitters send the same signature set.
    pub fn same_signatures(self) -> bool {
        matches!(self, Fig9Setup::OneSender | Fig9Setup::TwoSendersSame | Fig9Setup::ThreeSendersSame)
    }

    /// Short label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Fig9Setup::OneSender => "1 sender",
            Fig9Setup::TwoSendersSame => "2 senders, same signatures",
            Fig9Setup::TwoSendersDifferent => "2 senders, different signatures",
            Fig9Setup::ThreeSendersSame => "3 senders, same signatures",
            Fig9Setup::ThreeSendersDifferent => "3 senders, different signatures",
        }
    }
}

/// Outcome of one Fig 9 experiment cell.
#[derive(Clone, Copy, Debug)]
pub struct DetectionStats {
    /// Fraction of runs in which the target signature was detected.
    pub detection_ratio: f64,
    /// Fraction of runs in which a signature *not* transmitted was
    /// "detected" (paper reports this stays below 1%).
    pub false_positive_ratio: f64,
}

/// Run the Fig 9 experiment: `combined` signatures per burst under `setup`,
/// averaged over `runs` independent trials.
///
/// In multi-sender setups the combined signatures are split across the
/// senders ("different") or replicated at each sender ("same"), matching
/// the paper's description. SNR is per-burst at the receiver.
pub fn detection_experiment(
    family: &GoldFamily,
    setup: Fig9Setup,
    combined: usize,
    snr_db: f64,
    runs: usize,
    rng: &mut SimRng,
) -> DetectionStats {
    assert!(combined >= 1 && combined < family.len());
    let correlator = Correlator::default();
    let noise_sigma = (10f64.powf(-snr_db / 10.0) / 2.0).sqrt();
    let mut detected = 0usize;
    let mut false_positives = 0usize;
    for _ in 0..runs {
        // Random distinct codes for this trial; one extra as the
        // false-positive probe.
        let mut codes: Vec<usize> = Vec::with_capacity(combined + 1);
        while codes.len() < combined + 1 {
            let c = rng.below(family.len() as u64) as usize;
            if !codes.contains(&c) {
                codes.push(c);
            }
        }
        // lint: allow(D005) the loop above pushes combined + 1 distinct codes before exiting
        let absent_code = codes.pop().expect("probe code");
        let target = codes[rng.below(codes.len() as u64) as usize];

        let n_senders = setup.sender_count();
        // Distinct arrival skews: two physical transmitters never align to
        // the same 50 ns sample (propagation paths and turnaround timing
        // differ), so draw delays without replacement.
        let mut delays: Vec<usize> = (0..8).collect();
        rng.shuffle(&mut delays);
        let mut senders = Vec::with_capacity(n_senders);
        #[allow(clippy::needless_range_loop)]
        for s in 0..n_senders {
            let assigned: Vec<usize> = if setup.same_signatures() {
                codes.clone()
            } else {
                codes
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % n_senders == s)
                    .map(|(_, c)| c)
                    .collect()
            };
            if assigned.is_empty() {
                continue;
            }
            senders.push(SenderSpec {
                code_indices: assigned,
                delay_chips: delays[s],
                phase: rng.uniform_range(0.0, 2.0 * core::f64::consts::PI),
                // "Similar RSS" per the paper: within ±0.5 dB.
                amplitude: 10f64.powf(rng.uniform_range(-0.5, 0.5) / 20.0),
            });
        }

        let samples = synthesize_burst(family, &senders, noise_sigma, rng);
        let mut candidates = codes.clone();
        candidates.push(absent_code);
        let hits = correlator.detect(family, &samples, &candidates);
        if hits.contains(&target) {
            detected += 1;
        }
        if hits.contains(&absent_code) {
            false_positives += 1;
        }
    }
    DetectionStats {
        detection_ratio: detected as f64 / runs as f64,
        false_positive_ratio: false_positives as f64 / runs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_sim::rng::streams;

    fn rng() -> SimRng {
        SimRng::derive(0xD0_31_90, streams::PHY_SAMPLES)
    }

    #[test]
    fn lone_signature_scores_near_one() {
        let fam = GoldFamily::degree7();
        let mut r = rng();
        let samples =
            synthesize_burst(&fam, &[SenderSpec::simple(vec![5])], 0.01, &mut r);
        let peak = Correlator::default().peak(&samples, fam.code(5));
        assert!(peak.metric > 0.95, "metric={}", peak.metric);
        assert_eq!(peak.lag, 0);
    }

    #[test]
    fn absent_signature_scores_low() {
        let fam = GoldFamily::degree7();
        let mut r = rng();
        let samples =
            synthesize_burst(&fam, &[SenderSpec::simple(vec![5])], 0.01, &mut r);
        let peak = Correlator::default().peak(&samples, fam.code(77));
        assert!(peak.metric < 0.3, "metric={}", peak.metric);
    }

    #[test]
    fn four_combined_all_detected() {
        let fam = GoldFamily::degree7();
        let mut r = rng();
        let codes = vec![3, 50, 90, 120];
        let samples =
            synthesize_burst(&fam, &[SenderSpec::simple(codes.clone())], 0.05, &mut r);
        let det = Correlator::default().detect(&fam, &samples, &[3, 50, 90, 120, 7]);
        for c in &codes {
            assert!(det.contains(c), "code {c} missed: {det:?}");
        }
        assert!(!det.contains(&7), "false positive");
    }

    #[test]
    fn delayed_sender_still_detected() {
        let fam = GoldFamily::degree7();
        let mut r = rng();
        let sender = SenderSpec { code_indices: vec![12], delay_chips: 5, phase: 1.0, amplitude: 1.0 };
        let samples = synthesize_burst(&fam, &[sender], 0.02, &mut r);
        let peak = Correlator::default().peak(&samples, fam.code(12));
        assert_eq!(peak.lag, 5);
        assert!(peak.metric > 0.9);
    }

    #[test]
    fn same_signature_two_senders_detected() {
        let fam = GoldFamily::degree7();
        let mut r = rng();
        let mk = |delay, phase| SenderSpec {
            code_indices: vec![33],
            delay_chips: delay,
            phase,
            amplitude: 1.0,
        };
        // Even with near-opposite phases, distinct arrival lags keep a
        // detectable peak.
        let samples = synthesize_burst(&fam, &[mk(0, 0.0), mk(3, 3.0)], 0.02, &mut r);
        let det = Correlator::default().detect(&fam, &samples, &[33, 4]);
        assert!(det.contains(&33));
    }

    #[test]
    fn detection_experiment_shape_matches_fig9() {
        // The headline calibration: >= 98% detection up to 4 combined
        // signatures, monotone-ish degradation beyond, < 1% false
        // positives. (The full sweep is regenerated by the fig09 bench
        // binary.)
        let fam = GoldFamily::degree7();
        let mut r = rng();
        let runs = 200;
        for setup in Fig9Setup::ALL {
            for k in 1..=4 {
                let stats = detection_experiment(&fam, setup, k, 10.0, runs, &mut r);
                assert!(
                    stats.detection_ratio >= 0.97,
                    "{} k={k}: ratio={}",
                    setup.label(),
                    stats.detection_ratio
                );
                assert!(stats.false_positive_ratio < 0.01);
            }
        }
        let deep = detection_experiment(&fam, Fig9Setup::OneSender, 7, 10.0, runs, &mut r);
        assert!(
            deep.detection_ratio < 0.9,
            "7 combined should degrade: {}",
            deep.detection_ratio
        );
    }

    #[test]
    fn setup_metadata() {
        assert_eq!(Fig9Setup::ThreeSendersDifferent.sender_count(), 3);
        assert!(Fig9Setup::TwoSendersSame.same_signatures());
        assert!(!Fig9Setup::TwoSendersDifferent.same_signatures());
        assert_eq!(Fig9Setup::ALL.len(), 5);
    }
}
