//! # domino-phy
//!
//! Physical-layer substrate for the DOMINO (CoNEXT'13) reproduction.
//!
//! The paper's PHY contributions are exercised at two levels:
//!
//! * **Sample level** (this crate): a real OFDM encode/impair/decode
//!   pipeline for Rapid OFDM Polling ([`ofdm`], reproducing Table 1 and
//!   Figs 3–6), and real Gold-code signature synthesis + correlation
//!   detection ([`gold`], [`signature`], reproducing Fig 9). These replace
//!   the paper's USRP/GNURadio experiments.
//! * **Abstract level** (used by the network simulator): log-distance
//!   propagation ([`pathloss`]), an ns-3-style SINR→PER model
//!   ([`error_model`]), and power-unit arithmetic ([`units`]). The
//!   network-scale trigger/ROP success models in `domino-medium` and
//!   `domino-mac` are calibrated against this crate's sample-level
//!   experiments.
//!
//! Supporting DSP lives in [`complex`] and [`fft`] (the offline dependency
//! set has no complex/FFT crates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod error_model;
pub mod fft;
pub mod gold;
pub mod ofdm;
pub mod pathloss;
pub mod signature;
pub mod units;

pub use complex::Complex;
pub use error_model::DataRate;
pub use gold::GoldFamily;
pub use pathloss::LogDistanceModel;
pub use units::{Db, Dbm};
