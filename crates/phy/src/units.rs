//! Power and ratio units: dB, dBm, milliwatts.
//!
//! RSS matrices, noise floors and SINR thresholds throughout the
//! reproduction are expressed in these newtypes so that linear and
//! logarithmic quantities cannot be mixed up silently.

use core::fmt;
use core::ops::{Add, Neg, Sub};

/// A power ratio in decibels.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Db(pub f64);

/// An absolute power level in dB-milliwatts.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Dbm(pub f64);

impl Db {
    /// Zero gain.
    pub const ZERO: Db = Db(0.0);

    /// Convert a linear power ratio to dB. Panics on non-positive input.
    pub fn from_linear(ratio: f64) -> Db {
        assert!(ratio > 0.0, "dB of non-positive ratio");
        Db(10.0 * ratio.log10())
    }

    /// Linear power ratio.
    #[inline]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Raw dB value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Dbm {
    /// A conventional "no signal" level far below any noise floor.
    pub const FLOOR: Dbm = Dbm(-300.0);

    /// Convert from linear milliwatts. Panics on non-positive input.
    pub fn from_milliwatts(mw: f64) -> Dbm {
        assert!(mw > 0.0, "dBm of non-positive power");
        Dbm(10.0 * mw.log10())
    }

    /// Linear power in milliwatts.
    #[inline]
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Raw dBm value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Sum of two absolute powers (adds in the linear domain).
    pub fn power_sum(self, other: Dbm) -> Dbm {
        Dbm::from_milliwatts(self.to_milliwatts() + other.to_milliwatts())
    }

    /// Sum an iterator of absolute powers in the linear domain.
    ///
    /// Returns [`Dbm::FLOOR`] for an empty iterator.
    pub fn power_sum_all<I: IntoIterator<Item = Dbm>>(powers: I) -> Dbm {
        let total: f64 = powers.into_iter().map(|p| p.to_milliwatts()).sum();
        if total <= 0.0 {
            Dbm::FLOOR
        } else {
            Dbm::from_milliwatts(total)
        }
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    #[inline]
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    #[inline]
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

/// Thermal noise floor for a bandwidth in Hz at ~290 K with a typical 7 dB
/// receiver noise figure: -174 dBm/Hz + 10·log10(B) + NF.
pub fn noise_floor(bandwidth_hz: f64) -> Dbm {
    assert!(bandwidth_hz > 0.0);
    Dbm(-174.0 + 10.0 * bandwidth_hz.log10() + 7.0)
}

/// The 20 MHz 802.11 channel noise floor used throughout the reproduction.
///
/// -174 + 10·log10(20e6) + 7 ≈ -94 dBm. (DESIGN.md quotes the pre-NF value
/// of about -101 dBm; all thresholds in this workspace are calibrated
/// against this constant.)
pub fn wifi_noise_floor() -> Dbm {
    noise_floor(20e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn db_linear_round_trip() {
        assert!(close(Db(3.0).to_linear(), 1.995, 0.01));
        assert!(close(Db::from_linear(100.0).value(), 20.0, 1e-9));
        assert!(close(Db::from_linear(Db(-7.5).to_linear()).value(), -7.5, 1e-9));
    }

    #[test]
    fn dbm_round_trip() {
        assert!(close(Dbm(0.0).to_milliwatts(), 1.0, 1e-12));
        assert!(close(Dbm(20.0).to_milliwatts(), 100.0, 1e-9));
        assert!(close(Dbm::from_milliwatts(0.001).value(), -30.0, 1e-9));
    }

    #[test]
    fn power_sum_of_equal_powers_adds_3db() {
        let s = Dbm(-60.0).power_sum(Dbm(-60.0));
        assert!(close(s.value(), -56.99, 0.02));
    }

    #[test]
    fn power_sum_dominated_by_stronger() {
        let s = Dbm(-50.0).power_sum(Dbm(-90.0));
        assert!(close(s.value(), -50.0, 0.001));
    }

    #[test]
    fn power_sum_all_handles_empty() {
        assert_eq!(Dbm::power_sum_all(std::iter::empty()), Dbm::FLOOR);
        let s = Dbm::power_sum_all([Dbm(-60.0), Dbm(-60.0), Dbm(-60.0)]);
        assert!(close(s.value(), -55.23, 0.02));
    }

    #[test]
    fn arithmetic_mixes_units_correctly() {
        let rss = Dbm(-40.0) - Db(30.0); // tx power minus path loss
        assert!(close(rss.value(), -70.0, 1e-12));
        let snr = rss - Dbm(-94.0); // rss minus noise = ratio
        assert!(close(snr.value(), 24.0, 1e-12));
    }

    #[test]
    fn noise_floor_20mhz() {
        assert!(close(wifi_noise_floor().value(), -93.99, 0.05));
    }
}
