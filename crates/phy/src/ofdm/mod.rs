//! Rapid OFDM Polling (ROP) physical layer.
//!
//! ROP (paper §3.1) collects the queue length of every client of an AP in a
//! single special OFDM symbol: each client is assigned a private
//! *subchannel* of 6 data subcarriers and answers a polling packet by
//! modulating its 6-bit queue length with 2-ASK, one standard slot after
//! the poll. The AP takes one FFT and reads all queues at once.
//!
//! The symbol parameters are the paper's Table 1:
//!
//! | parameter                | WiFi  | ROP   |
//! |--------------------------|-------|-------|
//! | number of subcarriers    | 64    | 256   |
//! | subcarriers per subchannel | –   | 6     |
//! | guard subcarriers        | –     | 3     |
//! | number of subchannels    | –     | 24    |
//! | CP duration              | 0.8 µs| 3.2 µs|
//! | symbol duration          | 4 µs  | 16 µs |
//!
//! Submodules:
//! * [`layout`] — subcarrier-to-subchannel mapping (paper Fig 3),
//! * [`signalgen`] — client-side symbol synthesis and channel impairments,
//! * [`decoder`] — AP-side FFT demodulation and bit decisions,
//! * [`experiment`] — the Fig 5 / Fig 6 sample-level experiments that
//!   calibrate `domino-mac`'s ROP success model.

pub mod decoder;
pub mod experiment;
pub mod layout;
pub mod signalgen;

pub use decoder::{decode_symbol, DecoderConfig};
pub use experiment::{guard_sweep, received_spectrum, GuardSweepPoint, SpectrumScenario};
pub use layout::SubcarrierLayout;
pub use signalgen::{encode_queue_symbol, ClientChannel, combine_at_ap};

/// Sample rate of the ROP symbol: 256 subcarriers in a 12.8 µs FFT period
/// is 20 Msps, the full 802.11 channel bandwidth.
pub const SAMPLE_RATE_HZ: f64 = 20e6;

/// Subcarrier spacing: 20 MHz / 256 = 78.125 kHz.
pub const SUBCARRIER_SPACING_HZ: f64 = SAMPLE_RATE_HZ / 256.0;

/// Configuration of the ROP control symbol (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RopSymbolConfig {
    /// FFT size (number of subcarriers).
    pub n_fft: usize,
    /// Data subcarriers per client subchannel.
    pub data_per_subchannel: usize,
    /// Guard subcarriers separating adjacent subchannels.
    pub guard_subcarriers: usize,
    /// Cyclic-prefix length in samples.
    pub cp_len: usize,
}

impl Default for RopSymbolConfig {
    /// The paper's Table 1 values.
    fn default() -> Self {
        RopSymbolConfig {
            n_fft: 256,
            data_per_subchannel: 6,
            guard_subcarriers: 3,
            cp_len: 64, // 3.2 us at 20 Msps
        }
    }
}

impl RopSymbolConfig {
    /// Same as default but with a different number of guard subcarriers
    /// (used by the Fig 6 sweep).
    pub fn with_guard(guard_subcarriers: usize) -> Self {
        RopSymbolConfig { guard_subcarriers, ..Self::default() }
    }

    /// Cyclic-prefix duration in microseconds.
    pub fn cp_duration_us(&self) -> f64 {
        self.cp_len as f64 / SAMPLE_RATE_HZ * 1e6
    }

    /// Total symbol duration (CP + FFT period) in microseconds.
    pub fn symbol_duration_us(&self) -> f64 {
        (self.cp_len + self.n_fft) as f64 / SAMPLE_RATE_HZ * 1e6
    }

    /// Largest queue length a subchannel can report: 2^bits - 1.
    pub fn max_queue_report(&self) -> u32 {
        (1u32 << self.data_per_subchannel) - 1
    }

    /// The subcarrier layout induced by this configuration.
    pub fn layout(&self) -> SubcarrierLayout {
        SubcarrierLayout::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let cfg = RopSymbolConfig::default();
        assert_eq!(cfg.n_fft, 256);
        assert_eq!(cfg.data_per_subchannel, 6);
        assert_eq!(cfg.guard_subcarriers, 3);
        assert!((cfg.cp_duration_us() - 3.2).abs() < 1e-12);
        assert!((cfg.symbol_duration_us() - 16.0).abs() < 1e-12);
        assert_eq!(cfg.layout().num_subchannels(), 24);
        assert_eq!(cfg.max_queue_report(), 63);
    }

    #[test]
    fn subcarrier_spacing() {
        assert!((SUBCARRIER_SPACING_HZ - 78_125.0).abs() < 1e-9);
    }

    #[test]
    fn wifi_comparison_row() {
        // The WiFi column of Table 1: 64 subcarriers, 0.8 us CP, 4 us
        // symbol at the same 20 Msps.
        let wifi_cp_us = 16.0 / SAMPLE_RATE_HZ * 1e6;
        let wifi_sym_us = (16.0 + 64.0) / SAMPLE_RATE_HZ * 1e6;
        assert!((wifi_cp_us - 0.8).abs() < 1e-12);
        assert!((wifi_sym_us - 4.0).abs() < 1e-12);
    }
}
