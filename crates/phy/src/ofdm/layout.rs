//! Subcarrier-to-subchannel mapping (paper Fig 3).
//!
//! The 256 FFT bins are split as in 802.11: the DC bin is unused, the band
//! edges carry a 39-bin guard band (19 on the positive-frequency edge, 20
//! on the negative edge, mirroring 802.11's 11-of-64 proportion), and the
//! remainder holds 24 subchannels of 6 data subcarriers, each followed by
//! `guard_subcarriers` empty bins. Subchannels 0..11 occupy the positive
//! frequencies outward from DC; subchannels 12..23 mirror them on the
//! negative side, exactly as Fig 3 draws them.

use super::RopSymbolConfig;

/// Edge guard bins on the positive-frequency side (the negative side has
/// one more, absorbed by the unusable Nyquist bin).
const EDGE_GUARD_POS: usize = 19;

/// Resolved mapping from subchannel index to FFT bins.
#[derive(Clone, Debug)]
pub struct SubcarrierLayout {
    n_fft: usize,
    data_per_subchannel: usize,
    block: usize,
    per_side: usize,
}

impl SubcarrierLayout {
    /// Compute the layout for a symbol configuration.
    pub fn new(cfg: &RopSymbolConfig) -> SubcarrierLayout {
        assert!(cfg.n_fft.is_power_of_two() && cfg.n_fft >= 64);
        assert!(cfg.data_per_subchannel >= 1);
        let block = cfg.data_per_subchannel + cfg.guard_subcarriers;
        let usable_per_side = cfg.n_fft / 2 - 1 - EDGE_GUARD_POS;
        let per_side = usable_per_side / block;
        assert!(per_side >= 1, "configuration leaves no room for subchannels");
        SubcarrierLayout {
            n_fft: cfg.n_fft,
            data_per_subchannel: cfg.data_per_subchannel,
            block,
            per_side,
        }
    }

    /// Total number of assignable subchannels.
    #[inline]
    pub fn num_subchannels(&self) -> usize {
        self.per_side * 2
    }

    /// Signed logical bin indices (…, -2, -1, 1, 2, …) of the data
    /// subcarriers of `subchannel`, ordered from the most significant bit
    /// outward from DC.
    ///
    /// Panics if `subchannel >= num_subchannels()`.
    pub fn data_bins(&self, subchannel: usize) -> Vec<i32> {
        assert!(subchannel < self.num_subchannels(), "subchannel {subchannel} out of range");
        let (side, idx) = if subchannel < self.per_side {
            (1i32, subchannel)
        } else {
            (-1i32, subchannel - self.per_side)
        };
        let start = 1 + idx * self.block;
        (0..self.data_per_subchannel)
            .map(|k| side * (start + k) as i32)
            .collect()
    }

    /// Convert a signed logical bin index to the FFT array index.
    #[inline]
    pub fn bin_to_fft_index(&self, bin: i32) -> usize {
        let n = self.n_fft as i32;
        assert!(bin > -n / 2 && bin < n / 2 && bin != 0, "bin {bin} invalid");
        if bin >= 0 {
            bin as usize
        } else {
            (n + bin) as usize
        }
    }

    /// Signed bins of the band-edge guard, used by the decoder as a noise
    /// reference (no subchannel ever transmits there).
    pub fn edge_guard_bins(&self) -> Vec<i32> {
        let n = self.n_fft as i32;
        let pos_start = (1 + self.per_side * self.block) as i32;
        let mut bins: Vec<i32> = (pos_start..n / 2).collect();
        bins.extend((-(n / 2 - 1)..=-pos_start).rev());
        bins
    }

    /// Minimum bin distance between the data subcarriers of two adjacent
    /// subchannels (= guard_subcarriers + 1).
    pub fn adjacent_separation(&self) -> usize {
        self.block - self.data_per_subchannel + 1
    }

    /// The FFT size this layout was built for.
    #[inline]
    pub fn n_fft(&self) -> usize {
        self.n_fft
    }

    /// Data subcarriers per subchannel.
    #[inline]
    pub fn data_per_subchannel(&self) -> usize {
        self.data_per_subchannel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn default_layout_matches_fig3() {
        let layout = RopSymbolConfig::default().layout();
        assert_eq!(layout.num_subchannels(), 24);
        // Subchannel 0 starts right next to DC.
        assert_eq!(layout.data_bins(0), vec![1, 2, 3, 4, 5, 6]);
        // Subchannel 1 is separated by 3 guard bins.
        assert_eq!(layout.data_bins(1)[0], 10);
        // Subchannel 12 mirrors subchannel 0 on the negative side.
        assert_eq!(layout.data_bins(12), vec![-1, -2, -3, -4, -5, -6]);
        // The outermost positive subchannel's data ends at bin 105 (its
        // trailing guards reach 108). The paper's 39-bin guard band is the
        // 19 bins at 109..=127, the 19 at -109..=-127, and the unusable
        // Nyquist bin (±128); `edge_guard_bins` returns the 38 addressable
        // ones.
        assert_eq!(*layout.data_bins(11).last().unwrap(), 105);
        assert_eq!(layout.edge_guard_bins().len(), 38);
    }

    #[test]
    fn no_bin_shared_between_subchannels() {
        let layout = RopSymbolConfig::default().layout();
        let mut seen = HashSet::new();
        for s in 0..layout.num_subchannels() {
            for b in layout.data_bins(s) {
                assert!(seen.insert(b), "bin {b} assigned twice");
            }
        }
        // DC never assigned.
        assert!(!seen.contains(&0));
    }

    #[test]
    fn guard_bins_disjoint_from_data() {
        let layout = RopSymbolConfig::default().layout();
        let data: HashSet<i32> = (0..layout.num_subchannels())
            .flat_map(|s| layout.data_bins(s))
            .collect();
        for g in layout.edge_guard_bins() {
            assert!(!data.contains(&g), "edge bin {g} overlaps data");
        }
    }

    #[test]
    fn fft_index_round_trip() {
        let layout = RopSymbolConfig::default().layout();
        assert_eq!(layout.bin_to_fft_index(1), 1);
        assert_eq!(layout.bin_to_fft_index(-1), 255);
        assert_eq!(layout.bin_to_fft_index(108), 108);
        assert_eq!(layout.bin_to_fft_index(-108), 148);
    }

    #[test]
    fn guard_count_controls_separation() {
        for g in 0..=4 {
            let layout = RopSymbolConfig::with_guard(g).layout();
            assert_eq!(layout.adjacent_separation(), g + 1);
            let a = layout.data_bins(0);
            let b = layout.data_bins(1);
            assert_eq!((b[0] - a[a.len() - 1]) as usize, g + 1);
        }
    }

    #[test]
    fn zero_guard_layout_fits_more_subchannels() {
        let layout = RopSymbolConfig::with_guard(0).layout();
        assert!(layout.num_subchannels() >= 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_subchannel_panics() {
        let layout = RopSymbolConfig::default().layout();
        let _ = layout.data_bins(24);
    }
}
