//! AP-side ROP demodulation.
//!
//! The AP aligns one FFT window after the cyclic prefix (every client's
//! delayed symbol still fills the window because the skew is below the CP,
//! paper Fig 4), takes the 256-point FFT and reads each assigned
//! subchannel's 6 data subcarriers. Because a single symbol gives no phase
//! reference, bits are decided on *amplitude* (2-ASK, §3.1):
//!
//! * a per-symbol noise gate is estimated from the band-edge guard bins,
//!   which no subchannel ever occupies;
//! * within a subchannel, the threshold is half the strongest subcarrier
//!   amplitude (every client transmits its 1-bits at one power), floored
//!   by the noise gate.

use super::layout::SubcarrierLayout;
use super::signalgen::bits_to_queue;
use super::RopSymbolConfig;
use crate::complex::Complex;
use crate::fft::fft;

/// Decoder tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DecoderConfig {
    /// Noise gate as a multiple of the mean edge-guard amplitude.
    pub noise_gate_factor: f64,
    /// Bit threshold as a fraction of the strongest in-subchannel
    /// amplitude.
    pub relative_threshold: f64,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig { noise_gate_factor: 4.0, relative_threshold: 0.5 }
    }
}

/// The decoded report of one subchannel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubchannelReport {
    /// Subchannel index.
    pub subchannel: usize,
    /// Decided bits, MSB first.
    pub bits: Vec<bool>,
    /// The queue length those bits encode.
    pub queue: u32,
}

/// Decode the queue reports of `subchannels` from one received ROP symbol
/// (CP included). Also returns the per-bin amplitude spectrum for
/// diagnostics (used to regenerate Fig 5).
pub fn decode_symbol(
    cfg: &RopSymbolConfig,
    layout: &SubcarrierLayout,
    samples: &[Complex],
    subchannels: &[usize],
    dec: &DecoderConfig,
) -> (Vec<SubchannelReport>, Vec<f64>) {
    assert_eq!(samples.len(), cfg.cp_len + cfg.n_fft, "wrong symbol length");
    let mut body: Vec<Complex> = samples[cfg.cp_len..].to_vec();
    fft(&mut body);
    let spectrum: Vec<f64> = body.iter().map(|c| c.abs()).collect();

    // Noise reference from the edge guard band.
    let guard_bins = layout.edge_guard_bins();
    let noise_mean: f64 = guard_bins
        .iter()
        .map(|&b| spectrum[layout.bin_to_fft_index(b)])
        .sum::<f64>()
        / guard_bins.len() as f64;
    let gate = dec.noise_gate_factor * noise_mean;

    let reports = subchannels
        .iter()
        .map(|&sc| {
            let bins = layout.data_bins(sc);
            let amps: Vec<f64> = bins
                .iter()
                .map(|&b| spectrum[layout.bin_to_fft_index(b)])
                .collect();
            let peak = amps.iter().copied().fold(0.0f64, f64::max);
            let threshold = (dec.relative_threshold * peak).max(gate);
            let bits: Vec<bool> = amps.iter().map(|&a| a > threshold && a > gate).collect();
            // Edge case: if the peak itself is below the gate the client
            // is silent (queue 0).
            let bits = if peak <= gate { vec![false; amps.len()] } else { bits };
            let queue = bits_to_queue(&bits);
            SubchannelReport { subchannel: sc, bits, queue }
        })
        .collect();

    (reports, spectrum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ofdm::signalgen::{combine_at_ap, encode_queue_symbol, ClientChannel};
    use domino_sim::rng::streams;
    use domino_sim::SimRng;

    fn setup() -> (RopSymbolConfig, SubcarrierLayout, SimRng) {
        let cfg = RopSymbolConfig::default();
        let layout = cfg.layout();
        (cfg, layout, SimRng::derive(0xAB, streams::PHY_SAMPLES))
    }

    fn decode_single(
        cfg: &RopSymbolConfig,
        layout: &SubcarrierLayout,
        sc: usize,
        queue: u32,
        chan: &ClientChannel,
        noise: f64,
        rng: &mut SimRng,
    ) -> u32 {
        let sym = encode_queue_symbol(cfg, layout, sc, queue, chan);
        let rx = combine_at_ap(&[sym], noise, 10, rng);
        let (reports, _) = decode_symbol(cfg, layout, &rx, &[sc], &DecoderConfig::default());
        reports[0].queue
    }

    #[test]
    fn clean_channel_decodes_every_queue_value() {
        let (cfg, layout, mut rng) = setup();
        for q in [0u32, 1, 2, 31, 32, 42, 63] {
            let got = decode_single(&cfg, &layout, 7, q, &ClientChannel::ideal(), 0.001, &mut rng);
            assert_eq!(got, q, "queue {q} decoded as {got}");
        }
    }

    #[test]
    fn all_24_clients_decoded_in_one_symbol() {
        let (cfg, layout, mut rng) = setup();
        let mut symbols = Vec::new();
        let mut sent = Vec::new();
        for sc in 0..24 {
            let q = (sc as u32 * 7 + 3) % 64;
            let chan = ClientChannel {
                gain: 1.0,
                delay_samples: (sc * 2) % 48,
                cfo_fraction: 0.0,
                phase: sc as f64,
            };
            symbols.push(encode_queue_symbol(&cfg, &layout, sc, q, &chan));
            sent.push(q);
        }
        let rx = combine_at_ap(&symbols, 0.002, 10, &mut rng);
        let all: Vec<usize> = (0..24).collect();
        let (reports, _) = decode_symbol(&cfg, &layout, &rx, &all, &DecoderConfig::default());
        for (r, &q) in reports.iter().zip(sent.iter()) {
            assert_eq!(r.queue, q, "subchannel {}", r.subchannel);
        }
    }

    #[test]
    fn decodes_at_4db_snr() {
        // Paper §3.1: "as long as the SNR is higher than 4 dB, an OFDM
        // symbol can be decoded correctly".
        let (cfg, layout, mut rng) = setup();
        // Per-sample signal power of a 6-of-256-bin symbol: Parseval gives
        // total time-domain energy 6/256, i.e. 6/256^2 per sample. SNR =
        // signal / (2 sigma^2) per sample.
        let signal_power = 6.0 / (256.0 * 256.0);
        let snr = 10f64.powf(4.0 / 10.0);
        let sigma = (signal_power / snr / 2.0).sqrt();
        let mut ok = 0;
        let trials = 200;
        for t in 0..trials {
            let q = 1 + (t as u32 % 63);
            let got = decode_single(&cfg, &layout, 3, q, &ClientChannel::ideal(), sigma, &mut rng);
            if got == q {
                ok += 1;
            }
        }
        assert!(ok as f64 / trials as f64 > 0.95, "decode ratio {ok}/{trials} at 4 dB");
    }

    #[test]
    fn silent_client_reports_zero_under_noise() {
        let (cfg, layout, mut rng) = setup();
        for _ in 0..50 {
            let got = decode_single(&cfg, &layout, 11, 0, &ClientChannel::ideal(), 0.01, &mut rng);
            assert_eq!(got, 0);
        }
    }

    #[test]
    fn thirty_db_weaker_client_without_guard_fails_sometimes() {
        // The Fig 5b situation: adjacent subchannels, no guard bins, 30 dB
        // RSS gap, strong CFO on the strong client. The weak client's
        // decode must degrade (this is why ROP needs guard subcarriers).
        let cfg = RopSymbolConfig::with_guard(0);
        let layout = cfg.layout();
        let mut rng = SimRng::derive(0xF16, streams::PHY_SAMPLES);
        let mut errors = 0;
        let trials = 100;
        for t in 0..trials {
            let strong = ClientChannel {
                cfo_fraction: super::super::signalgen::RESIDUAL_CFO_MAX_FRACTION,
                ..ClientChannel::ideal()
            };
            let weak = ClientChannel {
                gain: 10f64.powf(-30.0 / 20.0),
                ..ClientChannel::ideal()
            };
            let q_weak = 1 + (t as u32 % 63);
            let s0 = encode_queue_symbol(&cfg, &layout, 0, 63, &strong);
            let s1 = encode_queue_symbol(&cfg, &layout, 1, q_weak, &weak);
            let rx = combine_at_ap(&[s0, s1], 1e-4, 10, &mut rng);
            let (reports, _) = decode_symbol(&cfg, &layout, &rx, &[1], &DecoderConfig::default());
            if reports[0].queue != q_weak {
                errors += 1;
            }
        }
        assert!(errors > trials / 4, "expected heavy corruption, got {errors}/{trials}");
    }

    #[test]
    #[should_panic(expected = "wrong symbol length")]
    fn wrong_length_panics() {
        let (cfg, layout, _) = setup();
        let samples = vec![Complex::ZERO; 100];
        let _ = decode_symbol(&cfg, &layout, &samples, &[0], &DecoderConfig::default());
    }
}
