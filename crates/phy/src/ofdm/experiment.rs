//! The paper's ROP microbenchmarks (Fig 5, Fig 6, and the SNR floor).
//!
//! These sample-level experiments calibrate the abstract ROP success model
//! used by the network simulator (`domino-mac::rop`): two clients on
//! adjacent subchannels, swept over RSS difference and number of guard
//! subcarriers.

use super::decoder::{decode_symbol, DecoderConfig};
use super::signalgen::{combine_at_ap, encode_queue_symbol, ClientChannel, RESIDUAL_CFO_MAX_FRACTION};
use super::RopSymbolConfig;
use domino_sim::rng::streams;
use domino_sim::SimRng;

/// The three received-spectrum snapshots of the paper's Fig 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpectrumScenario {
    /// Fig 5a: adjacent subchannels, no guard, similar RSS.
    SimilarRssNoGuard,
    /// Fig 5b: adjacent subchannels, no guard, 30 dB RSS difference.
    Unequal30DbNoGuard,
    /// Fig 5c: adjacent subchannels separated by 3 guard bins, 30 dB
    /// difference.
    Unequal30DbWithGuard,
}

impl SpectrumScenario {
    /// Guard subcarriers used in this scenario.
    pub fn guard(self) -> usize {
        match self {
            SpectrumScenario::SimilarRssNoGuard | SpectrumScenario::Unequal30DbNoGuard => 0,
            SpectrumScenario::Unequal30DbWithGuard => 3,
        }
    }

    /// RSS difference between the two clients in dB.
    pub fn rss_diff_db(self) -> f64 {
        match self {
            SpectrumScenario::SimilarRssNoGuard => 0.0,
            _ => 30.0,
        }
    }
}

/// Synthesize one Fig 5 snapshot and return `(bin, amplitude)` pairs for
/// the region around the two subchannels (signed logical bins).
///
/// Client 1 (strong) sends `111111`, client 2 sends `011111` as in the
/// paper's Fig 5a, so the first subcarrier of subchannel 2 shows the
/// interference floor.
pub fn received_spectrum(scenario: SpectrumScenario, seed: u64) -> Vec<(i32, f64)> {
    let cfg = RopSymbolConfig::with_guard(scenario.guard());
    let layout = cfg.layout();
    let mut rng = SimRng::derive(seed, streams::PHY_SAMPLES);

    let strong = ClientChannel {
        cfo_fraction: 0.9 * RESIDUAL_CFO_MAX_FRACTION,
        phase: 0.3,
        ..ClientChannel::ideal()
    };
    let weak = ClientChannel {
        gain: 10f64.powf(-scenario.rss_diff_db() / 20.0),
        cfo_fraction: 0.2 * RESIDUAL_CFO_MAX_FRACTION,
        phase: 1.1,
        ..ClientChannel::ideal()
    };

    let s1 = encode_queue_symbol(&cfg, &layout, 0, 0b111111, &strong);
    let s2 = encode_queue_symbol(&cfg, &layout, 1, 0b011111, &weak);
    let rx = combine_at_ap(&[s1, s2], 1e-4, 10, &mut rng);
    let (_, spectrum) = decode_symbol(&cfg, &layout, &rx, &[0, 1], &DecoderConfig::default());

    // Report bins from DC out past the second subchannel.
    // lint: allow(D005) subchannel bin lists are non-empty by construction
    let last_bin = *layout.data_bins(1).last().unwrap() + 4;
    (1..=last_bin)
        .map(|b| (b, spectrum[layout.bin_to_fft_index(b)]))
        .collect()
}

/// One cell of the Fig 6 sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardSweepPoint {
    /// Number of guard subcarriers between the subchannels.
    pub guard: usize,
    /// RSS difference in dB (strong minus weak).
    pub rss_diff_db: f64,
    /// Fraction of trials in which the weak client's queue decoded
    /// correctly.
    pub decode_ratio: f64,
}

/// Run the Fig 6 experiment: decode ratio of the weaker of two adjacent
/// clients, for each guard count and RSS difference.
pub fn guard_sweep(
    guards: &[usize],
    rss_diffs_db: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<GuardSweepPoint> {
    let mut out = Vec::with_capacity(guards.len() * rss_diffs_db.len());
    for &g in guards {
        let cfg = RopSymbolConfig::with_guard(g);
        let layout = cfg.layout();
        for &diff in rss_diffs_db {
            let mut rng = SimRng::derive(
                seed ^ (g as u64) << 32 ^ (diff as u64),
                streams::PHY_SAMPLES,
            );
            let mut correct = 0usize;
            for _ in 0..trials {
                let strong = ClientChannel::random(0.0, &mut rng);
                let weak = ClientChannel::random(-diff, &mut rng);
                let q_strong = rng.below(64) as u32;
                let q_weak = 1 + rng.below(63) as u32;
                let s0 = encode_queue_symbol(&cfg, &layout, 0, q_strong, &strong);
                let s1 = encode_queue_symbol(&cfg, &layout, 1, q_weak, &weak);
                let rx = combine_at_ap(&[s0, s1], 1e-4, 10, &mut rng);
                let (reports, _) =
                    decode_symbol(&cfg, &layout, &rx, &[1], &DecoderConfig::default());
                if reports[0].queue == q_weak {
                    correct += 1;
                }
            }
            out.push(GuardSweepPoint {
                guard: g,
                rss_diff_db: diff,
                decode_ratio: correct as f64 / trials as f64,
            });
        }
    }
    out
}

/// Decode ratio as a function of SNR for a lone client (the paper's
/// "SNR ≥ 4 dB suffices" claim).
pub fn snr_sweep(snrs_db: &[f64], trials: usize, seed: u64) -> Vec<(f64, f64)> {
    let cfg = RopSymbolConfig::default();
    let layout = cfg.layout();
    // Per-sample signal power (Parseval: 6 unit bins over a 256-point
    // transform spread the energy as 6/256^2 per sample).
    let signal_power = cfg.data_per_subchannel as f64 / (cfg.n_fft * cfg.n_fft) as f64;
    snrs_db
        .iter()
        .map(|&snr_db| {
            let mut rng = SimRng::derive(seed ^ snr_db.to_bits(), streams::PHY_SAMPLES);
            let sigma = (signal_power / 10f64.powf(snr_db / 10.0) / 2.0).sqrt();
            let mut correct = 0usize;
            for _ in 0..trials {
                let q = 1 + rng.below(63) as u32;
                let chan = ClientChannel::random(0.0, &mut rng);
                let sym = encode_queue_symbol(&cfg, &layout, 4, q, &chan);
                let rx = combine_at_ap(&[sym], sigma, 10, &mut rng);
                let (reports, _) =
                    decode_symbol(&cfg, &layout, &rx, &[4], &DecoderConfig::default());
                if reports[0].queue == q {
                    correct += 1;
                }
            }
            (snr_db, correct as f64 / trials as f64)
        })
        .collect()
}

/// The calibrated "tolerable RSS difference" per guard count that the
/// network simulator's ROP model uses: the largest swept difference at
/// which the decode ratio stays ≥ 95 %.
pub fn tolerance_db(guard: usize, trials: usize, seed: u64) -> f64 {
    let diffs: Vec<f64> = (0..=8).map(|i| 10.0 + 4.0 * i as f64).collect();
    let points = guard_sweep(&[guard], &diffs, trials, seed);
    points
        .iter()
        .filter(|p| p.decode_ratio >= 0.95)
        .map(|p| p.rss_diff_db)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_similar_rss_both_subchannels_clean() {
        let spec = received_spectrum(SpectrumScenario::SimilarRssNoGuard, 1);
        // Bins 1..6 (subchannel 0, all ones) and 8..12 (subchannel 1,
        // bits 11111 after the leading 0 at bin 7) are strong.
        let amp = |bin: i32| spec.iter().find(|(b, _)| *b == bin).unwrap().1;
        for b in 1..=6 {
            assert!(amp(b) > 0.5, "bin {b}");
        }
        assert!(amp(7) < 0.5 * amp(8), "zero bit should stay low");
        for b in 8..=12 {
            assert!(amp(b) > 0.5, "bin {b}");
        }
    }

    #[test]
    fn fig5b_strong_neighbour_buries_weak_edge() {
        let spec = received_spectrum(SpectrumScenario::Unequal30DbNoGuard, 2);
        let amp = |bin: i32| spec.iter().find(|(b, _)| *b == bin).unwrap().1;
        // The weak client's amplitude scale.
        let weak_ref = amp(12);
        // Leakage at the weak subchannel's first bins rivals or exceeds
        // the weak signal.
        assert!(
            amp(7) > 0.5 * weak_ref,
            "expected leakage at bin 7: leak={} weak={}",
            amp(7),
            weak_ref
        );
    }

    #[test]
    fn fig5c_guard_bins_protect_weak_subchannel() {
        let spec = received_spectrum(SpectrumScenario::Unequal30DbWithGuard, 3);
        let amp = |bin: i32| spec.iter().find(|(b, _)| *b == bin).unwrap().1;
        // With 3 guard bins subchannel 1 starts at bin 10; its first data
        // bin is the zero bit and must now sit well below the one-bits.
        let weak_ref = amp(15);
        assert!(
            amp(10) < 0.6 * weak_ref,
            "zero bit still corrupted: {} vs {}",
            amp(10),
            weak_ref
        );
    }

    #[test]
    fn guard_sweep_matches_paper_tolerances() {
        // Paper Fig 6: 3 guard subcarriers tolerate RSS differences up to
        // ~38 dB; fewer guards break earlier; more guards never hurt.
        let t0 = tolerance_db(0, 60, 77);
        let t1 = tolerance_db(1, 60, 77);
        let t3 = tolerance_db(3, 60, 77);
        let t4 = tolerance_db(4, 60, 77);
        assert!(t0 <= 22.0, "guard 0 tolerance too high: {t0}");
        assert!(t1 >= t0, "guard 1 ({t1}) worse than guard 0 ({t0})");
        assert!(t3 >= 34.0, "guard 3 tolerance too low: {t3}");
        assert!(t4 >= t3 - 4.0, "guard 4 ({t4}) much worse than guard 3 ({t3})");
    }

    #[test]
    fn snr_floor_near_4db() {
        // The decode transition sits around -4..0 dB; at 0 dB the ratio
        // already saturates near 1.0, so the "degrades at low SNR" check
        // must use a point well inside the transition band (-6 dB decodes
        // ~10 % of the time) rather than comparing 0 dB against 8 dB —
        // with 100 trials both round to 1.0 and a strict `<` is a coin
        // flip over seeds.
        let pts = snr_sweep(&[-6.0, 4.0, 8.0], 100, 5);
        let ratio = |snr: f64| pts.iter().find(|(s, _)| *s == snr).unwrap().1;
        assert!(ratio(4.0) > 0.9, "4 dB should decode: {}", ratio(4.0));
        assert!(ratio(8.0) > 0.98);
        assert!(
            ratio(-6.0) < 0.5,
            "-6 dB should be deep in the failure band: {}",
            ratio(-6.0)
        );
    }
}
