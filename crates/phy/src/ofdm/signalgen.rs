//! Client-side ROP symbol synthesis and the uplink channel model.
//!
//! Each client builds one OFDM symbol carrying its 6-bit queue length in
//! 2-ASK (the paper uses amplitude keying because a single symbol gives no
//! phase reference, §3.1) and transmits it one slot after the AP's polling
//! packet. This module synthesizes the complex-baseband samples and applies
//! the impairments the paper identifies as the limiting factors:
//!
//! * **Residual carrier-frequency offset** after preamble correction. CFO
//!   breaks subcarrier orthogonality; we model the resulting
//!   inter-carrier leakage as a frequency-domain kernel applied at symbol
//!   construction (Dirichlet-kernel magnitude with an extra per-bin
//!   roll-off representing transmit filtering). The kernel strength is
//!   calibrated so the leakage reach matches the paper's USRP
//!   measurements: at a 30 dB RSS difference the first three neighbouring
//!   subcarriers are corrupted (Fig 5b) while three guard subcarriers
//!   survive differences up to ~38 dB (Fig 6).
//! * **Arrival-time skew** between clients (propagation + turnaround),
//!   absorbed by the 3.2 µs cyclic prefix.
//! * **ADC dynamic range** at the AP: automatic gain control scales to the
//!   strongest client, and quantization noise buries clients far below it.

use super::layout::SubcarrierLayout;
use super::RopSymbolConfig;
use crate::complex::Complex;
use crate::fft::ifft;
use domino_sim::SimRng;
use core::f64::consts::PI;

/// Calibrated maximum residual CFO as a fraction of the 78.125 kHz
/// subcarrier spacing (≈ 12 kHz worst case; clients correct the bulk of
/// their offset from the polling preamble).
pub const RESIDUAL_CFO_MAX_FRACTION: f64 = 0.155;

/// Extra leakage roll-off per subcarrier of distance beyond the Dirichlet
/// kernel (transmit filtering), in dB.
pub const LEAKAGE_ROLLOFF_DB_PER_BIN: f64 = 5.0;

/// How many neighbouring bins on each side receive leakage.
const LEAKAGE_REACH: usize = 8;

/// One client's uplink channel as seen by the AP.
#[derive(Clone, Debug)]
pub struct ClientChannel {
    /// Linear amplitude gain (1.0 = reference RSS).
    pub gain: f64,
    /// Arrival delay in samples (must stay below the CP length).
    pub delay_samples: usize,
    /// Residual CFO as a signed fraction of the subcarrier spacing.
    pub cfo_fraction: f64,
    /// Constant carrier phase, radians.
    pub phase: f64,
}

impl ClientChannel {
    /// An ideal channel: unit gain, no skew, no residual CFO.
    pub fn ideal() -> ClientChannel {
        ClientChannel { gain: 1.0, delay_samples: 0, cfo_fraction: 0.0, phase: 0.0 }
    }

    /// A randomly impaired channel with the given RSS offset in dB
    /// (negative = weaker than reference).
    pub fn random(rss_offset_db: f64, rng: &mut SimRng) -> ClientChannel {
        let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
        ClientChannel {
            gain: 10f64.powf(rss_offset_db / 20.0),
            delay_samples: rng.below(40) as usize, // <= 2 us of skew
            cfo_fraction: sign * rng.uniform_range(0.3, 1.0) * RESIDUAL_CFO_MAX_FRACTION,
            phase: rng.uniform_range(0.0, 2.0 * PI),
        }
    }
}

/// Map a queue length to its 2-ASK bit pattern, MSB first.
pub fn queue_to_bits(queue: u32, bits: usize) -> Vec<bool> {
    assert!(queue < (1u32 << bits), "queue {queue} exceeds {bits}-bit report");
    (0..bits).rev().map(|b| (queue >> b) & 1 == 1).collect()
}

/// Inverse of [`queue_to_bits`].
pub fn bits_to_queue(bits: &[bool]) -> u32 {
    bits.iter().fold(0u32, |acc, &b| (acc << 1) | u32::from(b))
}

/// Synthesize the time-domain samples (CP included) of one client's ROP
/// answer on `subchannel`, through `channel`.
///
/// The CFO-induced inter-carrier leakage is applied in the frequency
/// domain before the IFFT: an active subcarrier at distance `d` deposits
/// `sin(pi*eps) / (pi*(d - eps)) * rolloff^(d-1)` of its amplitude into its
/// neighbours (the rectangular-window Dirichlet kernel with transmit
/// filtering), so the AP's FFT observes the leakage exactly where a real
/// front end would.
pub fn encode_queue_symbol(
    cfg: &RopSymbolConfig,
    layout: &SubcarrierLayout,
    subchannel: usize,
    queue: u32,
    channel: &ClientChannel,
) -> Vec<Complex> {
    assert!(channel.delay_samples < cfg.cp_len, "delay exceeds the cyclic prefix");
    let bits = queue_to_bits(queue, cfg.data_per_subchannel);
    let bins = layout.data_bins(subchannel);
    let mut freq = vec![Complex::ZERO; cfg.n_fft];
    let base = Complex::from_polar(channel.gain, channel.phase);
    let eps = channel.cfo_fraction;
    let rolloff = 10f64.powf(-LEAKAGE_ROLLOFF_DB_PER_BIN / 20.0);
    let main_tap = if eps.abs() < 1e-9 { 1.0 } else { (PI * eps).sin() / (PI * eps) };

    for (bin, &bit) in bins.iter().zip(bits.iter()) {
        if !bit {
            continue;
        }
        let center = layout.bin_to_fft_index(*bin);
        // Main tap.
        freq[center] += base * main_tap;
        // Leakage taps on both sides.
        if eps.abs() > 1e-9 {
            for d in 1..=LEAKAGE_REACH as i32 {
                let mag = (PI * eps).sin() / (PI * (d as f64 - eps))
                    * rolloff.powi(d - 1);
                let lo = (center as i32 - d).rem_euclid(cfg.n_fft as i32) as usize;
                let hi = (center as i32 + d).rem_euclid(cfg.n_fft as i32) as usize;
                freq[hi] += base * mag;
                freq[lo] += base * -mag * rolloff; // slightly asymmetric skirt
            }
        }
    }

    ifft(&mut freq);
    let body = freq;

    // Cyclic prefix, then the body, then the client's arrival delay as
    // leading silence (the AP's buffer is aligned to the nominal slot).
    let mut samples = vec![Complex::ZERO; channel.delay_samples];
    samples.extend_from_slice(&body[cfg.n_fft - cfg.cp_len..]);
    samples.extend_from_slice(&body);
    samples.truncate(cfg.cp_len + cfg.n_fft);
    // Pad in case the delay pushed us short (it cannot: truncate handles
    // the long side and delay < cp_len guarantees the short side).
    while samples.len() < cfg.cp_len + cfg.n_fft {
        samples.push(Complex::ZERO);
    }
    samples
}

/// Combine the clients' symbols at the AP front end: sum, add white noise,
/// then quantize with an AGC-scaled ADC of `adc_bits` resolution per I/Q
/// component. Returns the post-ADC sample buffer.
pub fn combine_at_ap(
    client_symbols: &[Vec<Complex>],
    noise_sigma: f64,
    adc_bits: u32,
    rng: &mut SimRng,
) -> Vec<Complex> {
    assert!(!client_symbols.is_empty(), "no client symbols to combine");
    let len = client_symbols[0].len();
    assert!(client_symbols.iter().all(|s| s.len() == len), "symbol length mismatch");
    let mut sum = vec![Complex::ZERO; len];
    for sym in client_symbols {
        for (acc, s) in sum.iter_mut().zip(sym.iter()) {
            *acc += *s;
        }
    }
    for s in sum.iter_mut() {
        *s += Complex::new(rng.normal(0.0, noise_sigma), rng.normal(0.0, noise_sigma));
    }
    quantize(&mut sum, adc_bits);
    sum
}

/// In-place ADC model: AGC scales full-scale to the strongest component,
/// then each of I and Q is rounded to `bits` levels and clipped.
fn quantize(samples: &mut [Complex], bits: u32) {
    assert!((2..=16).contains(&bits), "unrealistic ADC resolution");
    let full_scale = samples
        .iter()
        .map(|s| s.re.abs().max(s.im.abs()))
        .fold(0.0f64, f64::max);
    if full_scale <= 0.0 {
        return;
    }
    let levels = (1u32 << (bits - 1)) as f64;
    let step = full_scale / levels;
    for s in samples.iter_mut() {
        s.re = (s.re / step).round().clamp(-levels, levels) * step;
        s.im = (s.im / step).round().clamp(-levels, levels) * step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;
    use domino_sim::rng::streams;

    fn cfg() -> RopSymbolConfig {
        RopSymbolConfig::default()
    }

    #[test]
    fn bits_round_trip() {
        for q in [0u32, 1, 31, 42, 63] {
            assert_eq!(bits_to_queue(&queue_to_bits(q, 6)), q);
        }
        assert_eq!(queue_to_bits(0b101011, 6), vec![true, false, true, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_queue_panics() {
        let _ = queue_to_bits(64, 6);
    }

    #[test]
    fn ideal_symbol_energy_only_on_assigned_bins() {
        let cfg = cfg();
        let layout = cfg.layout();
        let sym = encode_queue_symbol(&cfg, &layout, 3, 63, &ClientChannel::ideal());
        assert_eq!(sym.len(), cfg.cp_len + cfg.n_fft);
        let mut body: Vec<Complex> = sym[cfg.cp_len..].to_vec();
        fft(&mut body);
        let bins = layout.data_bins(3);
        for b in &bins {
            let amp = body[layout.bin_to_fft_index(*b)].abs();
            assert!(amp > 0.9, "active bin {b} amp={amp}");
        }
        // A far-away subchannel sees nothing.
        for b in layout.data_bins(8) {
            let amp = body[layout.bin_to_fft_index(b)].abs();
            assert!(amp < 1e-9, "leak into bin {b}: {amp}");
        }
    }

    #[test]
    fn zero_queue_is_silence() {
        let cfg = cfg();
        let layout = cfg.layout();
        let sym = encode_queue_symbol(&cfg, &layout, 0, 0, &ClientChannel::ideal());
        let energy: f64 = sym.iter().map(|s| s.norm_sqr()).sum();
        assert!(energy < 1e-12);
    }

    #[test]
    fn cfo_leaks_into_neighbours_and_decays() {
        let cfg = cfg();
        let layout = cfg.layout();
        let chan = ClientChannel { cfo_fraction: RESIDUAL_CFO_MAX_FRACTION, ..ClientChannel::ideal() };
        let sym = encode_queue_symbol(&cfg, &layout, 0, 63, &chan);
        let mut body: Vec<Complex> = sym[cfg.cp_len..].to_vec();
        fft(&mut body);
        // The bin one past the subchannel edge (bin 7) sees leakage; the
        // bin four past (bin 10, where the next subchannel starts under
        // the default 3-guard layout) sees much less.
        let leak1 = body[7].abs();
        let leak4 = body[10].abs();
        assert!(leak1 > 0.05, "adjacent leakage too small: {leak1}");
        assert!(leak4 < leak1 / 3.0, "leakage does not decay: {leak1} -> {leak4}");
    }

    #[test]
    fn delay_within_cp_preserves_amplitudes() {
        let cfg = cfg();
        let layout = cfg.layout();
        let chan = ClientChannel { delay_samples: 40, ..ClientChannel::ideal() };
        let sym = encode_queue_symbol(&cfg, &layout, 5, 0b110101, &chan);
        let mut body: Vec<Complex> = sym[cfg.cp_len..].to_vec();
        fft(&mut body);
        let bins = layout.data_bins(5);
        let bits = queue_to_bits(0b110101, 6);
        for (b, bit) in bins.iter().zip(bits.iter()) {
            let amp = body[layout.bin_to_fft_index(*b)].abs();
            if *bit {
                assert!((amp - 1.0).abs() < 1e-6, "bin {b} amp={amp}");
            } else {
                assert!(amp < 1e-9);
            }
        }
    }

    #[test]
    fn gain_scales_amplitude() {
        let cfg = cfg();
        let layout = cfg.layout();
        let chan = ClientChannel { gain: 10f64.powf(-30.0 / 20.0), ..ClientChannel::ideal() };
        let sym = encode_queue_symbol(&cfg, &layout, 2, 63, &chan);
        let mut body: Vec<Complex> = sym[cfg.cp_len..].to_vec();
        fft(&mut body);
        let amp = body[layout.bin_to_fft_index(layout.data_bins(2)[0])].abs();
        assert!((20.0 * amp.log10() + 30.0).abs() < 0.1, "amp={amp}");
    }

    #[test]
    fn quantize_preserves_strong_kills_tiny() {
        let mut samples = vec![Complex::new(1.0, 0.0), Complex::new(1e-6, 0.0)];
        quantize(&mut samples, 8);
        assert!((samples[0].re - 1.0).abs() < 0.01);
        assert_eq!(samples[1].re, 0.0, "sub-LSB signal must vanish");
    }

    #[test]
    fn combine_sums_and_adds_noise() {
        let mut rng = SimRng::derive(1, streams::PHY_SAMPLES);
        let a = vec![Complex::ONE; 8];
        let b = vec![Complex::ONE; 8];
        let out = combine_at_ap(&[a, b], 0.0, 12, &mut rng);
        for s in &out {
            assert!((s.re - 2.0).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "delay exceeds")]
    fn delay_beyond_cp_panics() {
        let cfg = cfg();
        let layout = cfg.layout();
        let chan = ClientChannel { delay_samples: 64, ..ClientChannel::ideal() };
        let _ = encode_queue_symbol(&cfg, &layout, 0, 1, &chan);
    }
}
