//! In-place radix-2 decimation-in-time FFT.
//!
//! The ROP symbol uses a 256-point transform (Table 1 of the paper); the
//! offline dependency set has no FFT crate, so this is a small, well-tested
//! implementation. Power-of-two sizes only, which is all OFDM needs.

use crate::complex::Complex;
use core::f64::consts::PI;

/// Forward FFT, in place. `data.len()` must be a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, -1.0);
}

/// Inverse FFT, in place, normalized by 1/N. `data.len()` must be a power of
/// two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = *x / n;
    }
}

fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_phase(ang);
        for chunk in data.chunks_exact_mut(len) {
            let mut w = Complex::ONE;
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in &x {
            assert!(close(*v, Complex::ONE));
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let mut x = vec![Complex::ONE; 16];
        fft(&mut x);
        assert!(close(x[0], Complex::new(16.0, 0.0)));
        for v in &x[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 64;
        let k = 5;
        let mut x: Vec<Complex> = (0..n)
            .map(|t| Complex::from_phase(2.0 * PI * k as f64 * t as f64 / n as f64))
            .collect();
        fft(&mut x);
        assert!((x[k].abs() - n as f64).abs() < 1e-6);
        for (i, v) in x.iter().enumerate() {
            if i != k {
                assert!(v.abs() < 1e-6, "leakage at bin {i}: {}", v.abs());
            }
        }
    }

    use core::f64::consts::PI;

    #[test]
    fn fft_ifft_round_trip() {
        let n = 256;
        let mut x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let orig = x.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!(close(*a, *b));
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64).sqrt(), 1.0)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fab);
        for i in 0..n {
            assert!(close(fab[i], fa[i] + fb[i]));
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.7).sin()))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut fx = x;
        fft(&mut fx);
        let freq_energy: f64 = fx.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex::ZERO; 12];
        fft(&mut x);
    }
}
